//! End-to-end tests for M-Ring Paxos on the simulated cluster.

use abcast::{metric, MsgId};
use ringpaxos::cluster::{deploy_mring, MRingOptions};
use ringpaxos::StorageMode;
use simnet::prelude::*;
use std::collections::HashSet;

fn broadcast_set(sim: &Sim, proposers: &[NodeId]) -> HashSet<MsgId> {
    let mut out = HashSet::new();
    for &p in proposers {
        let n = sim.metrics().counter(p, "rp.proposed");
        for seq in 0..n {
            out.insert(MsgId(((p.0 as u64) << 40) | seq));
        }
    }
    out
}

#[test]
fn orders_and_delivers_under_load() {
    let mut sim = Sim::new(SimConfig::default());
    let opts = MRingOptions {
        ring_size: 3,
        n_learners: 3,
        n_proposers: 2,
        proposer_rate_bps: 200_000_000,
        msg_bytes: 8192,
        ..MRingOptions::default()
    };
    let d = deploy_mring(&mut sim, &opts, |_| {});
    sim.run_until(Time::from_secs(2));

    let log = d.log.lock().unwrap();
    assert!(log.total_deliveries() > 1000, "only {} deliveries", log.total_deliveries());
    log.check_total_order().expect("uniform total order");
    let broadcast = broadcast_set(&sim, &d.proposers);
    log.check_integrity(&broadcast).expect("uniform integrity");
}

#[test]
fn all_learners_catch_up_at_quiescence() {
    let mut sim = Sim::new(SimConfig::default());
    let opts = MRingOptions {
        ring_size: 3,
        n_learners: 4,
        n_proposers: 1,
        proposer_rate_bps: 50_000_000,
        proposer_stop: Some(Time::from_millis(800)),
        ..MRingOptions::default()
    };
    let d = deploy_mring(&mut sim, &opts, |_| {});
    // Run well past the stop time so everything drains.
    sim.run_until(Time::from_secs(2));

    let log = d.log.lock().unwrap();
    // Dedicated learners (indexes 0..4) must agree exactly with each other;
    // the proposer-learner delivers the same stream.
    let all: Vec<usize> = (0..d.all_learners.len()).collect();
    log.check_agreement_at_quiescence(&all).expect("agreement");
    log.check_total_order().expect("order");
}

#[test]
fn throughput_is_near_gigabit_wire_speed() {
    // The headline Fig 3.7 result: ~0.9 Gbps per receiver with 8 KB
    // messages, independent of receiver count.
    let mut sim = Sim::new(SimConfig::default());
    let opts = MRingOptions {
        ring_size: 3,
        n_learners: 8,
        n_proposers: 2,
        proposer_rate_bps: 475_000_000, // aggregate 950 Mbps offered
        msg_bytes: 8192,
        ..MRingOptions::default()
    };
    let d = deploy_mring(&mut sim, &opts, |_| {});
    let warmup = Time::from_secs(1);
    sim.run_until(warmup);
    let before = sim.metrics().counter(d.learners[0], metric::DELIVERED_BYTES);
    sim.run_until(Time::from_secs(3));
    let after = sim.metrics().counter(d.learners[0], metric::DELIVERED_BYTES);
    let tput = mbps(after - before, Dur::secs(2));
    assert!(tput > 750.0, "per-receiver throughput {tput:.0} Mbps, expected > 750");
    assert!(tput < 1000.0, "per-receiver throughput {tput:.0} Mbps beyond wire speed");
}

#[test]
fn latency_is_milliseconds_at_moderate_load() {
    let mut sim = Sim::new(SimConfig::default());
    let opts = MRingOptions {
        ring_size: 3,
        n_learners: 2,
        n_proposers: 1,
        proposer_rate_bps: 100_000_000,
        msg_bytes: 8192,
        ..MRingOptions::default()
    };
    let _d = deploy_mring(&mut sim, &opts, |_| {});
    sim.run_until(Time::from_secs(2));
    let lat = sim.metrics().latency(metric::LATENCY);
    assert!(lat.count > 100, "latency samples {}", lat.count);
    assert!(lat.mean > Dur::micros(150), "mean {:?} implausibly low", lat.mean);
    assert!(lat.mean < Dur::millis(20), "mean {:?} implausibly high", lat.mean);
}

#[test]
fn recovers_from_random_message_loss() {
    let mut cfg = SimConfig::default();
    cfg.random_loss = 0.01; // 1% of datagram copies vanish
    let mut sim = Sim::new(cfg);
    let opts = MRingOptions {
        ring_size: 3,
        n_learners: 3,
        n_proposers: 1,
        proposer_rate_bps: 80_000_000,
        ..MRingOptions::default()
    };
    let d = deploy_mring(&mut sim, &opts, |_| {});
    sim.run_until(Time::from_secs(3));

    let log = d.log.lock().unwrap();
    log.check_total_order().expect("order despite loss");
    assert!(log.total_deliveries() > 1000);
    // Retransmissions must actually have happened for this test to bite.
    let retrans: u64 = d.ring.iter().map(|&a| sim.metrics().counter(a, "rp.retrans")).sum();
    assert!(retrans > 0, "expected retransmissions under loss");
}

#[test]
fn slow_learner_triggers_flow_control() {
    let mut sim = Sim::new(SimConfig::default());
    let opts = MRingOptions {
        ring_size: 3,
        n_learners: 2,
        n_proposers: 2,
        proposer_rate_bps: 400_000_000,
        ..MRingOptions::default()
    };
    let d = deploy_mring(&mut sim, &opts, |cfg| {
        // Every learner needs 150us of application time per batch: far
        // slower than the offered 800 Mbps (~12k batches/s needs 55%+).
        cfg.learner_batch_cost = Dur::micros(150);
        cfg.flow.learner_threshold = 64;
    });
    sim.run_until(Time::from_secs(3));
    let slowdowns: u64 =
        d.all_learners.iter().map(|&l| sim.metrics().counter(l, "rp.slowdown")).sum();
    assert!(slowdowns > 0, "learners should have asked the ring to slow down");
    let log = d.log.lock().unwrap();
    log.check_total_order().expect("order under back-pressure");
    assert!(log.total_deliveries() > 500, "delivery must continue while throttled");
}

#[test]
fn garbage_collection_advances() {
    let mut sim = Sim::new(SimConfig::default());
    let opts = MRingOptions {
        ring_size: 3,
        n_learners: 2,
        n_proposers: 1,
        proposer_rate_bps: 100_000_000,
        ..MRingOptions::default()
    };
    let d = deploy_mring(&mut sim, &opts, |_| {});
    sim.run_until(Time::from_secs(2));
    let advanced = sim.metrics().counter(d.coordinator(), "rp.gc_advanced");
    assert!(advanced > 100, "gc watermark advanced only {advanced} instances");
}

#[test]
fn sync_disk_writes_bound_throughput() {
    // Fig 3.9: with synchronous disk writes everything is disk bound at a
    // constant ~270 Mbps regardless of offered load.
    let mut sim = Sim::new(SimConfig::default());
    let opts = MRingOptions {
        ring_size: 3,
        n_learners: 2,
        n_proposers: 2,
        proposer_rate_bps: 300_000_000,
        msg_bytes: 8192,
        ..MRingOptions::default()
    };
    let d = deploy_mring(&mut sim, &opts, |cfg| {
        cfg.storage = StorageMode::SyncDisk;
    });
    let warmup = Time::from_secs(1);
    sim.run_until(warmup);
    let before = sim.metrics().counter(d.learners[0], metric::DELIVERED_BYTES);
    sim.run_until(Time::from_secs(3));
    let after = sim.metrics().counter(d.learners[0], metric::DELIVERED_BYTES);
    let tput = mbps(after - before, Dur::secs(2));
    assert!((180.0..340.0).contains(&tput), "sync-disk throughput {tput:.0} Mbps, expected ~270");
}

#[test]
fn coordinator_failover_resumes_delivery_without_violations() {
    let mut sim = Sim::new(SimConfig::default());
    let opts = MRingOptions {
        ring_size: 3,
        spares: 2,
        n_learners: 2,
        n_proposers: 1,
        proposer_rate_bps: 50_000_000,
        ..MRingOptions::default()
    };
    let d = deploy_mring(&mut sim, &opts, |_| {});
    sim.run_until(Time::from_millis(500));
    let coord = d.coordinator();
    sim.set_node_up(coord, false);
    sim.run_until(Time::from_secs(4));

    // A takeover must have happened.
    let takeovers: u64 = d.ring.iter().map(|&a| sim.metrics().counter(a, "rp.became_coord")).sum();
    assert!(takeovers >= 1, "no acceptor took over as coordinator");

    // Delivery resumed: messages delivered well after the crash.
    let delivered_after: u64 =
        d.learners.iter().map(|&l| sim.metrics().counter(l, metric::DELIVERED_MSGS)).sum();
    assert!(delivered_after > 500, "delivery stalled after failover: {delivered_after}");

    let log = d.log.lock().unwrap();
    log.check_total_order().expect("total order across failover");
    let broadcast = broadcast_set(&sim, &d.proposers);
    log.check_integrity(&broadcast).expect("no duplicates after resubmission");
}

#[test]
fn runs_are_deterministic() {
    let run = |seed: u64| -> (u64, u64) {
        let mut cfg = SimConfig::default();
        cfg.seed = seed;
        cfg.random_loss = 0.005;
        let mut sim = Sim::new(cfg);
        let opts = MRingOptions {
            ring_size: 3,
            n_learners: 2,
            n_proposers: 2,
            proposer_rate_bps: 150_000_000,
            ..MRingOptions::default()
        };
        let d = deploy_mring(&mut sim, &opts, |_| {});
        sim.run_until(Time::from_secs(1));
        let bytes: u64 =
            d.all_learners.iter().map(|&l| sim.metrics().counter(l, metric::DELIVERED_BYTES)).sum();
        let msgs: u64 =
            d.all_learners.iter().map(|&l| sim.metrics().counter(l, metric::DELIVERED_MSGS)).sum();
        (bytes, msgs)
    };
    assert_eq!(run(42), run(42), "same seed must reproduce identical results");
    assert_ne!(run(42), run(43), "different seeds should differ under loss");
}

#[test]
fn mid_ring_acceptor_crash_triggers_ring_repair() {
    // §3.3.4/§3.3.5: a silent mid-ring acceptor breaks the 2B relay; the
    // coordinator probes the acceptors, lays out a new ring around the
    // failure (promoting a spare), and delivery resumes.
    let mut sim = Sim::new(SimConfig::default());
    let opts = MRingOptions {
        ring_size: 3,
        spares: 1,
        n_learners: 2,
        n_proposers: 2,
        proposer_rate_bps: 100_000_000,
        ..MRingOptions::default()
    };
    let d = deploy_mring(&mut sim, &opts, |_| {});
    sim.run_until(Time::from_millis(500));
    let victim = d.ring[1];
    sim.set_node_up(victim, false);
    sim.run_until(Time::from_millis(1000));

    let coord = d.coordinator();
    assert!(sim.metrics().counter(coord, "rp.ring_probe") >= 1, "coordinator never probed");
    assert_eq!(sim.metrics().counter(coord, "rp.ring_repair"), 1, "expected exactly one repair");

    // Delivery after the repair runs at the offered rate again.
    let before = sim.metrics().counter(d.learners[0], metric::DELIVERED_MSGS);
    sim.run_until(Time::from_millis(1500));
    let after = sim.metrics().counter(d.learners[0], metric::DELIVERED_MSGS);
    let rate = (after - before) as f64 / 0.5;
    // 200 Mbps offered at 8 KB messages ≈ 3. 05 k msgs/s.
    assert!(rate > 2000.0, "delivery did not recover after ring repair: {rate:.0}/s");

    let log = d.log.lock().unwrap();
    log.check_total_order().expect("total order across ring repair");
    let broadcast = broadcast_set(&sim, &d.proposers);
    log.check_integrity(&broadcast).expect("no duplicates after repair");
}

#[test]
fn ring_repair_without_spares_shrinks_to_majority() {
    // With no spares, the repaired ring is the surviving majority: 2 of
    // 3 acceptors still form an m-quorum and the protocol continues.
    let mut sim = Sim::new(SimConfig::default());
    let opts = MRingOptions {
        ring_size: 3,
        spares: 0,
        n_learners: 1,
        n_proposers: 1,
        proposer_rate_bps: 100_000_000,
        ..MRingOptions::default()
    };
    let d = deploy_mring(&mut sim, &opts, |_| {});
    sim.run_until(Time::from_millis(500));
    sim.set_node_up(d.ring[0], false);
    sim.run_until(Time::from_millis(1200));

    let coord = d.coordinator();
    assert!(sim.metrics().counter(coord, "rp.ring_repair") >= 1, "no repair happened");
    let before = sim.metrics().counter(d.learners[0], metric::DELIVERED_MSGS);
    sim.run_until(Time::from_millis(1700));
    let after = sim.metrics().counter(d.learners[0], metric::DELIVERED_MSGS);
    assert!(after > before + 500, "majority ring did not resume delivery");
    d.log.lock().unwrap().check_total_order().expect("total order across repair");
}

#[test]
fn transient_stall_does_not_reform_the_ring() {
    // A healthy ring under steady load: the repair machinery must stay
    // quiet (no probes escalate into a reform that would churn the ring).
    let mut sim = Sim::new(SimConfig::default());
    let opts = MRingOptions {
        ring_size: 3,
        spares: 1,
        n_learners: 2,
        n_proposers: 2,
        proposer_rate_bps: 200_000_000,
        ..MRingOptions::default()
    };
    let d = deploy_mring(&mut sim, &opts, |_| {});
    sim.run_until(Time::from_secs(3));
    let coord = d.coordinator();
    assert_eq!(sim.metrics().counter(coord, "rp.ring_repair"), 0, "repair fired on a healthy ring");
}

#[test]
fn paused_learner_catches_up_within_gc_retention() {
    // §3.3.7: acceptors collect state once f+1 learners applied it, but
    // keep a retention window so a straggler still finds every missing
    // instance by retransmission. A learner paused briefly (its peers
    // race ahead and let GC advance) must fully catch up on resume.
    let mut sim = Sim::new(SimConfig::default());
    let opts = MRingOptions {
        ring_size: 3,
        n_learners: 3,
        n_proposers: 1,
        proposer_rate_bps: 50_000_000, // ~760 instances/s << retention
        proposer_stop: Some(Time::from_millis(1500)),
        ..MRingOptions::default()
    };
    let d = deploy_mring(&mut sim, &opts, |_| {});
    let straggler = d.learners[2];
    sim.run_until(Time::from_millis(500));
    sim.set_node_up(straggler, false);
    sim.run_until(Time::from_millis(800));
    sim.restart_node(straggler); // resume with a 300 ms gap
    sim.run_until(Time::from_secs(3));

    let fast = sim.metrics().counter(d.learners[0], metric::DELIVERED_MSGS);
    let slow = sim.metrics().counter(straggler, metric::DELIVERED_MSGS);
    assert!(fast > 500, "too little traffic for the scenario");
    assert_eq!(fast, slow, "straggler failed to catch up after its pause");
    d.log.lock().unwrap().check_total_order().expect("orders agree");
}
