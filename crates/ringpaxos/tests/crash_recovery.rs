//! Crash, restart, and recovery of U-Ring Paxos processes: the
//! acceptance scenarios of the recovery subsystem. A ring process is
//! crashed mid-load and respawned as a *fresh* actor over its stable
//! store; the restarted learner must recover from its checkpoint plus
//! the decided suffix (never a full replay), the restarted acceptor
//! must replay its write-ahead vote log, and the crash-aware agreement
//! checker must find no lost and no duplicated deliveries.

use recovery::{LogMode, NullApp};
use ringpaxos::cluster::{
    deploy_mring_recoverable, deploy_uring_recoverable, respawn_mring, respawn_uring, MRingOptions,
    RecoverableURing, URingOptions, URingRecoveryOptions,
};
use simnet::prelude::*;

fn opts(proposers: Vec<usize>) -> URingOptions {
    URingOptions {
        ring_len: 5,
        n_acceptors: 3,
        proposer_positions: proposers,
        proposer_rate_bps: 60_000_000,
        msg_bytes: 16 * 1024,
        burst: 1,
        proposer_stop: Some(Time::from_millis(2500)),
    }
}

fn deploy(sim: &mut Sim, proposers: Vec<usize>, rec: URingRecoveryOptions) -> RecoverableURing {
    deploy_uring_recoverable(
        sim,
        &opts(proposers),
        rec,
        |_| {},
        |_| Some(Box::new(NullApp::default())),
    )
}

/// Delivered-message counts per ring position.
fn delivered(sim: &Sim, ru: &RecoverableURing) -> Vec<u64> {
    ru.d.ring.iter().map(|&n| sim.metrics().counter(n, "abcast.delivered_msgs")).collect()
}

/// The acceptance scenario: a learner-only ring process crashes
/// mid-load, is respawned over its stable store, recovers from
/// checkpoint + decided suffix, and the crash-aware checker passes.
#[test]
fn restarted_learner_recovers_from_checkpoint_plus_suffix() {
    let victim = 4usize; // learner-only: not an acceptor, not a proposer
    let mut sim = Sim::new(SimConfig::default());
    let ru = deploy(&mut sim, vec![0, 1, 2], URingRecoveryOptions::default());

    sim.run_until(Time::from_millis(1000));
    let before_crash = delivered(&sim, &ru)[victim];
    assert!(before_crash > 0, "load flowed before the crash");
    sim.set_node_up(ru.d.ring[victim], false);
    sim.run_until(Time::from_millis(1300));

    // The victim's own durable checkpoint was taken before the crash.
    let own_cp = ru.stores[victim].lock().unwrap().checkpoint.clone().expect("checkpointed");
    assert!(own_cp.watermark.0 > 0);
    assert!(own_cp.log_pos > 0);

    respawn_uring(&mut sim, &ru, victim, Some(Box::new(NullApp::default())));
    sim.run_until(Time::from_secs(6));

    // No lost, no duplicated deliveries across the restart.
    let log = ru.d.log.lock().unwrap();
    log.check_crash_agreement(&[0, 1, 2, 3, 4]).expect("crash-aware agreement");

    // The restart was recorded with the checkpoint's resume basis.
    let marks = log.restarts_of(victim);
    assert_eq!(marks.len(), 1);
    assert_eq!(marks[0].1, own_cp.log_pos as usize, "resumed from the durable checkpoint");
    assert!(marks[0].1 > 0, "not a from-scratch replay");

    // Catch-up fetched only the decided suffix, not the whole history.
    let v = ru.d.ring[victim];
    let total_instances: u64 = sim.metrics().sum("abcast.instances");
    let caught_up = sim.metrics().counter(v, "rec.catchup_instances");
    assert!(caught_up > 0, "the decided suffix was transferred");
    assert!(
        caught_up < total_instances / 2,
        "suffix catch-up ({caught_up}) must be far below full replay ({total_instances})"
    );

    // Time-to-recover was measured.
    let ttr = sim.metrics().latency("rec.ttr");
    assert_eq!(ttr.count, 1);
    assert!(ttr.max > Dur::ZERO);
}

/// An acceptor crash: votes survive in the write-ahead log, the fresh
/// incarnation replays them, and the ring — stalled during the outage,
/// exactly ch. 7's U-Ring lesson — resumes and reaches agreement.
#[test]
fn restarted_acceptor_replays_wal_and_ring_resumes() {
    let victim = 1usize; // mid-segment acceptor
    let mut sim = Sim::new(SimConfig::default());
    let ru = deploy(&mut sim, vec![0, 2, 3], URingRecoveryOptions::default());

    sim.run_until(Time::from_millis(1000));
    sim.set_node_up(ru.d.ring[victim], false);
    sim.run_until(Time::from_millis(1200));
    let during = delivered(&sim, &ru);
    sim.run_until(Time::from_millis(1400));
    let during2 = delivered(&sim, &ru);
    // The ring stalls while an acceptor is down (at most the open window
    // of instances still trickles through the healthy segment).
    assert!(
        during2[0] - during[0] <= 64,
        "a broken ring must not keep moving traffic: {} -> {}",
        during[0],
        during2[0]
    );

    // Votes are durable: the WAL has content to replay.
    assert!(!ru.stores[victim].lock().unwrap().votes.is_empty(), "write-ahead log survived");

    respawn_uring(&mut sim, &ru, victim, Some(Box::new(NullApp::default())));
    sim.run_until(Time::from_secs(6));

    let after = delivered(&sim, &ru);
    assert!(
        after[0] > during2[0] + 100,
        "ring resumed after the acceptor restart: {} -> {}",
        during2[0],
        after[0]
    );
    ru.d.log.lock().unwrap().check_crash_agreement(&[0, 1, 2, 3, 4]).expect("agreement");
}

/// A long outage with a small retention slack forces the state-transfer
/// path: the recovering learner adopts the peer's checkpoint (marked as
/// a transfer in the delivery log) and still reaches agreement.
#[test]
fn long_outage_falls_back_to_state_transfer() {
    let victim = 4usize;
    let mut sim = Sim::new(SimConfig::default());
    let rec = URingRecoveryOptions {
        checkpoint_interval: 64,
        catchup_retention: 0, // trim the cache hard at every checkpoint
        ..URingRecoveryOptions::default()
    };
    let ru = deploy(&mut sim, vec![0, 1, 2], rec);

    sim.run_until(Time::from_millis(600));
    sim.set_node_up(ru.d.ring[victim], false);
    // Long outage: peers checkpoint (and trim) far past the victim.
    sim.run_until(Time::from_millis(2000));
    respawn_uring(&mut sim, &ru, victim, Some(Box::new(NullApp::default())));
    sim.run_until(Time::from_secs(6));

    let v = ru.d.ring[victim];
    assert!(
        sim.metrics().counter(v, "rec.state_transfers") > 0,
        "a peer checkpoint was transferred"
    );
    let log = ru.d.log.lock().unwrap();
    log.check_crash_agreement(&[0, 1, 2, 3, 4]).expect("agreement with state transfer");
    assert!(
        log.restarts_of(victim).iter().any(|&(_, _, transferred)| transferred),
        "the transfer was recorded as such"
    );
}

/// M-Ring: a dedicated learner crashes mid-load, is respawned over its
/// stable store, restores its checkpoint, and bulk-fetches the decided
/// suffix from its preferential acceptor over TCP.
#[test]
fn mring_learner_recovers_from_checkpoint_and_tcp_catchup() {
    let mut sim = Sim::new(SimConfig::default());
    let opts = MRingOptions {
        ring_size: 3,
        n_learners: 2,
        n_proposers: 2,
        proposer_rate_bps: 30_000_000,
        msg_bytes: 8192,
        proposer_stop: Some(Time::from_millis(2500)),
        ..MRingOptions::default()
    };
    let rm = deploy_mring_recoverable(
        &mut sim,
        &opts,
        128,
        |_| {},
        |_| Some(Box::new(NullApp::default())),
    );
    let victim = rm.d.learners[0]; // all_learners index 0

    sim.run_until(Time::from_millis(1000));
    sim.set_node_up(victim, false);
    sim.run_until(Time::from_millis(1400));
    let cp = rm.store_of(victim).lock().unwrap().checkpoint.clone().expect("checkpointed");
    assert!(cp.watermark.0 > 0 && cp.log_pos > 0);

    respawn_mring(&mut sim, &rm, victim, Some(Box::new(NullApp::default())));
    sim.run_until(Time::from_secs(6));

    let log = rm.d.log.lock().unwrap();
    let all: Vec<usize> = (0..rm.d.all_learners.len()).collect();
    log.check_crash_agreement(&all).expect("crash-aware agreement");
    let marks = log.restarts_of(0);
    assert_eq!(marks.len(), 1);
    assert_eq!(marks[0].1, cp.log_pos as usize, "resumed from the durable checkpoint");

    assert!(
        sim.metrics().counter(victim, "rec.catchup_instances") > 0,
        "the decided suffix came over the TCP catch-up path"
    );
    assert_eq!(sim.metrics().latency("rec.ttr").count, 1);
    // Vote durability: the acceptors' stable stores hold votes.
    assert!(!rm.store_of(rm.d.ring[0]).lock().unwrap().votes.is_empty());
}

/// Crashing the recovering learner's catch-up peer as well must not
/// wedge recovery: the victim's first catch-up may complete against a
/// peer that is itself freshly respawned (empty horizon), and the
/// persistent gap-detection tick re-enters catch-up once the peer has
/// content again.
#[test]
fn double_crash_of_victim_and_catchup_peer_still_recovers() {
    let victim = 4usize;
    let peer = 2usize; // last acceptor: the victim's default catch-up peer
    let mut sim = Sim::new(SimConfig::default());
    let ru = deploy(&mut sim, vec![0, 1], URingRecoveryOptions::default());

    sim.run_until(Time::from_millis(900));
    sim.set_node_up(ru.d.ring[victim], false);
    sim.run_until(Time::from_millis(1000));
    sim.set_node_up(ru.d.ring[peer], false);
    sim.run_until(Time::from_millis(1200));
    respawn_uring(&mut sim, &ru, peer, Some(Box::new(NullApp::default())));
    sim.run_until(Time::from_millis(1250));
    respawn_uring(&mut sim, &ru, victim, Some(Box::new(NullApp::default())));
    sim.run_until(Time::from_secs(8));

    ru.d.log.lock().unwrap().check_crash_agreement(&[0, 1, 2, 3, 4]).expect("agreement");
}

/// M-Ring coordinator failover with recovery enabled: the promises the
/// surviving acceptors make to the new coordinator's round are
/// persisted, so a later restart could never vote in the old round.
#[test]
fn mring_failover_persists_promises() {
    let mut sim = Sim::new(SimConfig::default());
    let opts = MRingOptions {
        ring_size: 3,
        n_learners: 2,
        n_proposers: 2,
        proposer_rate_bps: 30_000_000,
        msg_bytes: 8192,
        proposer_stop: Some(Time::from_millis(2500)),
        ..MRingOptions::default()
    };
    let rm = deploy_mring_recoverable(&mut sim, &opts, 128, |_| {}, |_| None);
    let coord = rm.d.coordinator();
    sim.run_until(Time::from_millis(1000));
    sim.set_node_up(coord, false);
    sim.run_until(Time::from_secs(5));

    rm.d.log.lock().unwrap().check_total_order().expect("order across failover");
    let promised: Vec<u64> =
        rm.d.ring
            .iter()
            .filter(|&&n| n != coord)
            .map(|&n| rm.store_of(n).lock().unwrap().promised.counter)
            .collect();
    assert!(
        promised.iter().any(|&c| c >= 2),
        "the takeover round must be durably promised (got counters {promised:?})"
    );
}

/// M-Ring: when the acceptors' §3.3.7 GC has collected past a crashed
/// learner's checkpoint, catch-up escalates to a state transfer of a
/// peer learner's checkpoint instead of hanging.
#[test]
fn mring_gcd_suffix_falls_back_to_peer_state_transfer() {
    let mut sim = Sim::new(SimConfig::default());
    let opts = MRingOptions {
        ring_size: 3,
        n_learners: 3, // enough healthy learners for the f+1 quorum to advance GC
        n_proposers: 2,
        proposer_rate_bps: 40_000_000,
        msg_bytes: 8192,
        proposer_stop: Some(Time::from_millis(3000)),
        ..MRingOptions::default()
    };
    let rm = deploy_mring_recoverable(
        &mut sim,
        &opts,
        64,
        |cfg| cfg.gc_retention = 64, // collect aggressively
        |_| Some(Box::new(NullApp::default())),
    );
    let victim = rm.d.learners[0];

    sim.run_until(Time::from_millis(800));
    sim.set_node_up(victim, false);
    // Long outage: the healthy quorum advances GC far past the victim.
    sim.run_until(Time::from_millis(2200));
    respawn_mring(&mut sim, &rm, victim, Some(Box::new(NullApp::default())));
    sim.run_until(Time::from_secs(7));

    assert!(
        sim.metrics().counter(victim, "rec.state_transfers") > 0,
        "a peer learner's checkpoint was transferred"
    );
    let log = rm.d.log.lock().unwrap();
    let all: Vec<usize> = (0..rm.d.all_learners.len()).collect();
    log.check_crash_agreement(&all).expect("agreement with state transfer");
    assert!(log.restarts_of(0).iter().any(|&(_, _, transferred)| transferred));
}

/// Group-commit vote logging: the ring reaches agreement with fewer,
/// larger device writes than per-vote sync logging.
#[test]
fn group_commit_wal_reaches_agreement_with_fewer_disk_ops() {
    let run = |mode: LogMode| -> (u64, Sim, RecoverableURing) {
        let mut sim = Sim::new(SimConfig::default());
        let rec = URingRecoveryOptions { wal_mode: mode, ..URingRecoveryOptions::default() };
        let ru = deploy(&mut sim, vec![0, 1, 2], rec);
        sim.run_until(Time::from_secs(4));
        let delivered = sim.metrics().counter(ru.d.ring[3], "abcast.delivered_msgs");
        (delivered, sim, ru)
    };
    let (sync_delivered, sync_sim, sync_ru) = run(LogMode::Sync);
    let (group_delivered, group_sim, group_ru) =
        run(LogMode::Group { interval: Dur::millis(5), max_bytes: 256 * 1024 });
    assert!(sync_delivered > 0 && group_delivered > 0);
    sync_ru.d.log.lock().unwrap().check_crash_agreement(&[0, 1, 2, 3, 4]).expect("sync agreement");
    group_ru
        .d
        .log
        .lock()
        .unwrap()
        .check_crash_agreement(&[0, 1, 2, 3, 4])
        .expect("group agreement");
    // Same vote volume, different write pattern: both modes must have
    // written every vote to disk.
    assert!(sync_sim.metrics().sum("disk.written_bytes") > 0);
    assert!(group_sim.metrics().sum("disk.written_bytes") > 0);
}
