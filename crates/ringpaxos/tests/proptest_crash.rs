//! Property tests for crash/recovery schedules: arbitrary interleavings
//! of `set_node_up`, `restart_node`, and recovery respawns
//! (`replace_actor` over the stable store) on a recovery-enabled U-Ring
//! must preserve the checker invariants — no lost, no duplicated, no
//! reordered deliveries — once the cluster quiesces. Also pins down
//! that actors tolerate the duplicate timer chains `restart_node`
//! documents.

use abcast::MsgId;
use proptest::prelude::*;
use recovery::NullApp;
use ringpaxos::cluster::{
    deploy_mring, deploy_uring_recoverable, respawn_uring, MRingOptions, URingOptions,
    URingRecoveryOptions,
};
use simnet::prelude::*;
use std::collections::HashSet;

#[derive(Clone, Copy, Debug)]
enum Outage {
    /// Crash, then recover with actor state preserved.
    Recover,
    /// Crash, then `restart_node` (SIGSTOP/SIGCONT semantics).
    Restart,
    /// Crash, then respawn a fresh process over the stable store.
    Respawn,
}

proptest! {
    // Each case simulates ~5s of cluster time; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn crash_schedules_preserve_agreement(
        seed in 0u64..10_000,
        victim_pos in 3usize..5, // learner-only positions of the 5-ring
        kinds in proptest::collection::vec(0u8..3, 1..3),
        start_ms in 300u64..900,
        down_ms in 50u64..500,
        gap_ms in 100u64..400,
    ) {
        let mut cfg = SimConfig::default();
        cfg.seed = seed;
        let mut sim = Sim::new(cfg);
        let opts = URingOptions {
            ring_len: 5,
            n_acceptors: 3,
            proposer_positions: vec![0, 1, 2],
            proposer_rate_bps: 50_000_000,
            msg_bytes: 16 * 1024,
            proposer_stop: Some(Time::from_millis(2000)),
            ..URingOptions::default()
        };
        let rec = URingRecoveryOptions { checkpoint_interval: 64, ..Default::default() };
        let ru = deploy_uring_recoverable(
            &mut sim, &opts, rec, |_| {}, |_| Some(Box::new(NullApp::default())),
        );
        let victim = ru.d.ring[victim_pos];

        let mut t = start_ms;
        for k in &kinds {
            let kind = match k { 0 => Outage::Recover, 1 => Outage::Restart, _ => Outage::Respawn };
            sim.run_until(Time::from_millis(t));
            sim.set_node_up(victim, false);
            sim.run_until(Time::from_millis(t + down_ms));
            match kind {
                Outage::Recover => sim.set_node_up(victim, true),
                Outage::Restart => sim.restart_node(victim),
                Outage::Respawn => {
                    respawn_uring(&mut sim, &ru, victim_pos, Some(Box::new(NullApp::default())))
                }
            }
            t += down_ms + gap_ms;
        }
        sim.run_until(Time::from_secs(6));

        let log = ru.d.log.lock().unwrap();
        log.check_crash_agreement(&[0, 1, 2, 3, 4])
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let mut broadcast = HashSet::new();
        for &p in &ru.d.ring[0..3] {
            for seq in 0..sim.metrics().counter(p, "rp.proposed") {
                broadcast.insert(MsgId(((p.0 as u64) << 40) | seq));
            }
        }
        // Integrity *per incarnation*: within each epoch no duplicates.
        // Across a respawn, re-delivery above the checkpoint basis is
        // legitimate, so integrity applies to the uninterrupted learners.
        for l in 0..5usize {
            if log.restarts_of(l).is_empty() {
                let mut seen = HashSet::new();
                for &m in log.sequence(l) {
                    prop_assert!(seen.insert(m), "learner {l} duplicated {m:?}");
                    prop_assert!(broadcast.contains(&m), "learner {l} phantom {m:?}");
                }
            }
        }
        prop_assert!(log.total_deliveries() > 0, "nothing delivered at all");
    }

    /// The failover-enabled variant spans configuration epochs: any ring
    /// position may be the victim — the coordinator included — so the
    /// schedules drive epoch takeovers, stale-round fencing, splice-outs
    /// and rejoins, and the checker additionally enforces per-learner
    /// epoch monotonicity (`check_crash_agreement` runs
    /// `check_epoch_monotonic` first).
    #[test]
    fn failover_crash_schedules_preserve_agreement_across_epochs(
        seed in 0u64..10_000,
        victim_pos in 0usize..5, // every position, coordinator included
        kinds in proptest::collection::vec(0u8..3, 1..3),
        start_ms in 300u64..900,
        down_ms in 50u64..500,
        gap_ms in 200u64..500,
    ) {
        let mut cfg = SimConfig::default();
        cfg.seed = seed;
        let mut sim = Sim::new(cfg);
        let opts = URingOptions {
            ring_len: 5,
            n_acceptors: 3,
            proposer_positions: vec![0, 1, 2],
            proposer_rate_bps: 50_000_000,
            msg_bytes: 16 * 1024,
            proposer_stop: Some(Time::from_millis(2000)),
            ..URingOptions::default()
        };
        let rec = URingRecoveryOptions { checkpoint_interval: 64, ..Default::default() };
        let ru = deploy_uring_recoverable(
            &mut sim,
            &opts,
            rec,
            |cfg| cfg.suspicion_timeout = Some(Dur::millis(40)),
            |_| Some(Box::new(NullApp::default())),
        );
        let victim = ru.d.ring[victim_pos];

        let mut t = start_ms;
        for k in &kinds {
            let kind = match k { 0 => Outage::Recover, 1 => Outage::Restart, _ => Outage::Respawn };
            sim.run_until(Time::from_millis(t));
            sim.set_node_up(victim, false);
            sim.run_until(Time::from_millis(t + down_ms));
            match kind {
                Outage::Recover => sim.set_node_up(victim, true),
                Outage::Restart => sim.restart_node(victim),
                Outage::Respawn => {
                    respawn_uring(&mut sim, &ru, victim_pos, Some(Box::new(NullApp::default())))
                }
            }
            t += down_ms + gap_ms;
        }
        sim.run_until(Time::from_secs(8));

        let log = ru.d.log.lock().unwrap();
        log.check_crash_agreement(&[0, 1, 2, 3, 4])
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert!(log.total_deliveries() > 0, "nothing delivered at all");
    }
}

/// `restart_node` re-runs `on_start`, so every periodic timer chain is
/// duplicated (the old chain keeps firing): pace, batch, re-proposal.
/// The U-Ring actors must tolerate that — double-rate timers, not
/// double deliveries.
#[test]
fn uring_tolerates_duplicate_timer_chains_after_restart_node() {
    let mut sim = Sim::new(SimConfig::default());
    let opts = URingOptions {
        ring_len: 5,
        n_acceptors: 3,
        proposer_positions: vec![0, 1, 2],
        proposer_rate_bps: 50_000_000,
        msg_bytes: 16 * 1024,
        proposer_stop: Some(Time::from_millis(1500)),
        ..URingOptions::default()
    };
    let rec = URingRecoveryOptions::default();
    let ru = deploy_uring_recoverable(
        &mut sim,
        &opts,
        rec,
        |_| {},
        |_| Some(Box::new(NullApp::default())),
    );
    // Restart the coordinator twice in quick succession and a mid-ring
    // proposer once: three extra copies of every timer chain.
    sim.run_until(Time::from_millis(600));
    sim.restart_node(ru.d.ring[0]);
    sim.run_until(Time::from_millis(700));
    sim.restart_node(ru.d.ring[0]);
    sim.restart_node(ru.d.ring[1]);
    sim.run_until(Time::from_secs(4));

    let log = ru.d.log.lock().unwrap();
    log.check_crash_agreement(&[0, 1, 2, 3, 4]).expect("agreement under duplicate timers");
    assert!(log.total_deliveries() > 0);
}

/// The same duplicate-timer tolerance for M-Ring: restarting the
/// coordinator duplicates its batch/flow/heartbeat chains and must not
/// break total order.
#[test]
fn mring_tolerates_duplicate_timer_chains_after_restart_node() {
    let mut sim = Sim::new(SimConfig::default());
    let opts = MRingOptions {
        ring_size: 3,
        n_learners: 2,
        n_proposers: 2,
        proposer_rate_bps: 50_000_000,
        proposer_stop: Some(Time::from_millis(1500)),
        ..MRingOptions::default()
    };
    let d = deploy_mring(&mut sim, &opts, |_| {});
    sim.run_until(Time::from_millis(600));
    sim.restart_node(d.coordinator());
    sim.run_until(Time::from_millis(700));
    sim.restart_node(d.coordinator());
    sim.run_until(Time::from_secs(4));

    let log = d.log.lock().unwrap();
    log.check_total_order().expect("order under duplicate timers");
    assert!(log.total_deliveries() > 0);
}
