//! Golden-trace determinism test.
//!
//! Runs a seeded M-Ring Paxos deployment (with loss injection, so the
//! RNG, retransmission, and flow-control paths are all exercised) and a
//! seeded U-Ring deployment, then asserts the *exact* event count,
//! per-learner delivery counts, and a checksum over every per-node
//! counter. Any change to the engine's data structures that accidentally
//! reorders events, perturbs the RNG stream, or miscounts a metric shows
//! up here as a hard failure.
//!
//! The expected values were captured from the engine before the hot-path
//! overhaul (interned metrics, dense TCP tables, cached batch routing);
//! the overhauled engine must reproduce them bit for bit. Every scenario
//! runs several times — under the identity partition, under 2- and
//! 4-shard partitions, and with the determinism-mode executor asked for
//! multiple threads — against the *same* pinned values: the sharded
//! executor's cross-shard handoff must be trace-invisible, and
//! determinism mode must produce the serial schedule for *any*
//! configured thread count (the thread count is definitionally ignored;
//! this pins that contract). To re-capture after an
//! *intentional* semantic change:
//!
//! ```text
//! GOLDEN_PRINT=1 cargo test -p ringpaxos --test golden_trace -- --nocapture
//! ```

use abcast::metric;
use ringpaxos::cluster::{deploy_mring, deploy_uring, MRingOptions, URingOptions};
use simnet::prelude::*;

/// FNV-1a over every non-zero `(node, name, value)` counter triple in
/// deterministic order.
fn counter_checksum(sim: &Sim) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut byte = |b: u8| {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    };
    sim.metrics().for_each_counter(|node, name, v| {
        for b in (node.0 as u64).to_le_bytes() {
            byte(b);
        }
        for b in name.bytes() {
            byte(b);
        }
        for b in v.to_le_bytes() {
            byte(b);
        }
    });
    h
}

struct Golden {
    events: u64,
    delivered: Vec<u64>,
    checksum: u64,
    latency_count: usize,
    latency_mean_ns: u64,
}

fn report(label: &str, got: &Golden, want: &Golden) {
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!(
            "{label}: events={} delivered={:?} checksum={:#x} latency_count={} latency_mean_ns={}",
            got.events, got.delivered, got.checksum, got.latency_count, got.latency_mean_ns
        );
        return;
    }
    assert_eq!(got.events, want.events, "{label}: event count drifted");
    assert_eq!(got.delivered, want.delivered, "{label}: per-learner deliveries drifted");
    assert_eq!(got.checksum, want.checksum, "{label}: counter checksum drifted");
    assert_eq!(got.latency_count, want.latency_count, "{label}: latency sample count drifted");
    assert_eq!(got.latency_mean_ns, want.latency_mean_ns, "{label}: latency mean drifted");
}

fn harvest(sim: &Sim, learners: &[NodeId]) -> Golden {
    let lat = sim.metrics().latency(metric::LATENCY);
    Golden {
        events: sim.events_processed(),
        delivered: learners
            .iter()
            .map(|&n| sim.metrics().counter(n, metric::DELIVERED_MSGS))
            .collect(),
        checksum: counter_checksum(sim),
        latency_count: lat.count,
        latency_mean_ns: lat.mean.as_nanos(),
    }
}

#[test]
fn mring_golden_trace() {
    let run = |shards: usize, threads: usize| {
        let mut cfg = SimConfig::default();
        cfg.seed = 0x601D;
        let mut sim = Sim::new(cfg);
        let opts = MRingOptions {
            ring_size: 3,
            n_learners: 2,
            n_proposers: 2,
            proposer_rate_bps: 200_000_000,
            proposer_stop: Some(Time::from_millis(600)),
            ..MRingOptions::default()
        };
        if shards > 1 {
            // Pre-deploy: nodes home round-robin over `shards` as they
            // are added.
            sim.set_partition(Partition::modulo(0, shards));
        }
        // Determinism mode must ignore the thread count entirely.
        sim.set_threads(threads);
        let d = deploy_mring(&mut sim, &opts, |_| {});
        sim.run_until(Time::from_millis(800));
        harvest(&sim, &d.all_learners)
    };
    let want = Golden {
        events: 102418,
        delivered: vec![3664, 3664, 3664, 3664],
        checksum: 0xbea8ba7530c18542,
        latency_count: 3664,
        latency_mean_ns: 881880,
    };
    report("mring", &run(1, 1), &want);
    report("mring k=2", &run(2, 1), &want);
    report("mring k=2 t=2", &run(2, 2), &want);
    report("mring k=4 t=4", &run(4, 4), &want);
}

#[test]
fn mring_lossy_golden_trace() {
    let run = |shards: usize, threads: usize| {
        let mut cfg = SimConfig::default();
        cfg.seed = 0xA5A5;
        cfg.random_loss = 0.002;
        let mut sim = Sim::new(cfg);
        let opts = MRingOptions {
            ring_size: 4,
            n_learners: 2,
            n_proposers: 2,
            proposer_rate_bps: 150_000_000,
            proposer_stop: Some(Time::from_millis(600)),
            ..MRingOptions::default()
        };
        if shards > 1 {
            sim.set_partition(Partition::modulo(0, shards));
        }
        sim.set_threads(threads);
        let d = deploy_mring(&mut sim, &opts, |_| {});
        sim.run_until(Time::from_millis(800));
        harvest(&sim, &d.all_learners)
    };
    // Recaptured (GOLDEN_PRINT=1) when loss injection moved from the
    // engine-global RNG to per-node streams: draws now come from the
    // sender's own stream, so the loss pattern (not the protocol)
    // changed. The fault-free traces above and below are bit-identical
    // across that change.
    let want = Golden {
        events: 89576,
        delivered: vec![2743, 2743, 2743, 2743],
        checksum: 0x5a1368d99bb9f882,
        latency_count: 2743,
        latency_mean_ns: 86146672,
    };
    report("mring_lossy", &run(1, 1), &want);
    report("mring_lossy k=2", &run(2, 1), &want);
    report("mring_lossy k=2 t=2", &run(2, 2), &want);
}

/// Probes are pure observation: running the U-Ring scenario with every
/// probe category enabled must reproduce the exact same golden values
/// as the probe-free runs above, while also yielding a non-empty
/// lifecycle stream whose latency decomposition is well-formed.
#[test]
fn uring_probes_enabled_golden_trace() {
    let run = |shards: usize, threads: usize| {
        let mut cfg = SimConfig::default();
        cfg.seed = 0x0451;
        let mut sim = Sim::new(cfg);
        let opts = URingOptions {
            ring_len: 5,
            n_acceptors: 3,
            proposer_rate_bps: 120_000_000,
            proposer_stop: Some(Time::from_millis(600)),
            ..URingOptions::default()
        };
        if shards > 1 {
            sim.set_partition(Partition::modulo(0, shards));
        }
        sim.set_threads(threads);
        sim.set_probes(ProbeConfig::all());
        let d = deploy_uring(&mut sim, &opts, |_| {});
        sim.run_until(Time::from_millis(800));
        (harvest(&sim, &d.ring), sim.probe_events())
    };
    let want = Golden {
        events: 38835,
        delivered: vec![1375, 1375, 1375, 1375, 1375],
        checksum: 0x13a7cdb7b6ff35e1,
        latency_count: 1375,
        latency_mean_ns: 4462429,
    };
    let (got, events) = run(1, 1);
    report("uring+probes", &got, &want);
    let (got2, events2) = run(2, 1);
    report("uring+probes k=2", &got2, &want);
    let (got3, events3) = run(2, 2);
    report("uring+probes k=2 t=2", &got3, &want);
    // Per (seed, partition) the probe stream is thread-count invariant.
    assert_eq!(simnet::probe::encode(&events2), simnet::probe::encode(&events3));
    // Handoff events exist only under a real partition; everything else
    // (protocol, net, host) is partition invariant in count.
    let non_exec = |evs: &[simnet::probe::ProbeEvent]| {
        evs.iter()
            .filter(|e| simnet::probe::code::category_of(e.code) != simnet::probe::category::EXEC)
            .count()
    };
    assert_eq!(non_exec(&events), non_exec(&events2));

    let spans = simnet::probe::lifecycle_spans(&events);
    let decided = spans.iter().filter(|s| s.decide.is_some()).count();
    assert!(
        decided as u64 >= want.latency_count as u64,
        "every delivery implies a decided instance"
    );
    let rep = simnet::probe::decompose(&spans);
    assert!(rep.instances > 0);
    assert!(rep.total.count > 0);
    // Each instance's recorded stages must be time-ordered.
    for s in &spans {
        let mut last = s.propose;
        for stage in [s.phase2a, s.phase2b, s.decide, s.deliver] {
            if let (Some(a), Some(b)) = (last, stage) {
                assert!(a <= b, "lifecycle stages must be time-ordered");
            }
            if stage.is_some() {
                last = stage;
            }
        }
    }
}

#[test]
fn uring_golden_trace() {
    let run = |shards: usize, threads: usize| {
        let mut cfg = SimConfig::default();
        cfg.seed = 0x0451;
        let mut sim = Sim::new(cfg);
        let opts = URingOptions {
            ring_len: 5,
            n_acceptors: 3,
            proposer_rate_bps: 120_000_000,
            proposer_stop: Some(Time::from_millis(600)),
            ..URingOptions::default()
        };
        if shards > 1 {
            sim.set_partition(Partition::modulo(0, shards));
        }
        sim.set_threads(threads);
        let d = deploy_uring(&mut sim, &opts, |_| {});
        sim.run_until(Time::from_millis(800));
        harvest(&sim, &d.ring)
    };
    let want = Golden {
        events: 38835,
        delivered: vec![1375, 1375, 1375, 1375, 1375],
        checksum: 0x13a7cdb7b6ff35e1,
        latency_count: 1375,
        latency_mean_ns: 4462429,
    };
    report("uring", &run(1, 1), &want);
    report("uring k=2", &run(2, 1), &want);
    report("uring k=2 t=2", &run(2, 2), &want);
    report("uring k=4 t=4", &run(4, 4), &want);
}
