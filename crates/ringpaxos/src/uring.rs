//! Unicast-based Ring Paxos (U-Ring Paxos, thesis Algorithm 3).
//!
//! All processes — proposers, acceptors (the coordinator first), and
//! learners — sit on one logical directed ring connected by TCP links.
//! Values travel the ring to the coordinator (Task 1); the coordinator
//! emits combined `Phase2a/2b` messages that accumulate votes down the
//! acceptor segment; the *last* acceptor detects the decision (Task 4) and
//! the decision circulates the rest of the ring, carrying the chosen batch
//! to the processes that have not seen it (Task 5).
//!
//! Flow control is inherent: TCP back-pressure between neighbours plus a
//! bounded window of outstanding consensus instances (§3.3.6).

use std::collections::VecDeque;
use std::collections::{BTreeMap, BTreeSet};

use abcast::{metric, MsgId, Pacer, SharedLog};

use crate::dedup::DeliveredTracker;
use paxos::acceptor::Acceptor;
use paxos::msg::{InstanceId, Round};
use simnet::prelude::*;

use crate::config::{StorageMode, URingConfig};
use crate::msg::UMsg;
use crate::value::{batch_bytes, Batch, BatchData, Value};

const T_BATCH: u64 = 1 << 56;
const T_PACE: u64 = 2 << 56;
const T_DISK: u64 = 9 << 56;
const KIND_MASK: u64 = 0xff << 56;

/// Coordinator-only state.
struct UCoord {
    pending: VecDeque<Value>,
    pending_bytes: u64,
    next_instance: InstanceId,
    outstanding: BTreeSet<InstanceId>,
}

/// One U-Ring Paxos process.
pub struct URingProcess {
    cfg: URingConfig,
    me: NodeId,
    pos: usize,
    round: Round,
    coord: Option<UCoord>,
    acceptor: Option<Acceptor<Batch>>,
    /// Learner state: buffered decisions waiting for in-order delivery.
    learner: Option<ULearner>,
    prop: Option<UProposer>,
    log: Option<SharedLog>,
    /// Phase2ab messages awaiting a pending sync disk write, per instance.
    disk_pending: BTreeMap<InstanceId, (Round, Batch)>,
}

struct ULearner {
    index: usize,
    ready: BTreeMap<InstanceId, Batch>,
    next_deliver: InstanceId,
    /// Exactly-once filter over delivered values, bounded by per-proposer
    /// watermarks instead of an ever-growing id set.
    delivered: DeliveredTracker,
}

struct UProposer {
    pacer: Pacer,
    next_seq: u64,
    /// Values proposed but not yet observed delivered locally.
    inflight: u32,
}

impl URingProcess {
    /// Creates the process at ring position `pos` (must host node `me`).
    pub fn new(
        cfg: URingConfig,
        pos: usize,
        proposer: Option<Pacer>,
        learner_log: Option<SharedLog>,
    ) -> URingProcess {
        let me = cfg.ring[pos];
        // Phase 1 pre-executed at deployment: round 1 owned by position 0.
        let round = Round::new(1, 0);
        let is_coord = pos == 0;
        let is_acceptor = cfg.acceptor_positions.contains(&pos);
        let learner_index = cfg.learner_positions.iter().position(|&p| p == pos);
        let coord = is_coord.then(|| UCoord {
            pending: VecDeque::new(),
            pending_bytes: 0,
            next_instance: InstanceId(0),
            outstanding: BTreeSet::new(),
        });
        let acceptor = is_acceptor.then(|| {
            let mut a = Acceptor::new();
            let _ = a.receive_1a(round);
            a
        });
        let learner = learner_index.map(|index| ULearner {
            index,
            ready: BTreeMap::new(),
            next_deliver: InstanceId(0),
            delivered: DeliveredTracker::new(),
        });
        URingProcess {
            cfg,
            me,
            pos,
            round,
            coord,
            acceptor,
            learner,
            prop: proposer.map(|pacer| UProposer { pacer, next_seq: 0, inflight: 0 }),
            log: learner_log,
            disk_pending: BTreeMap::new(),
        }
    }

    fn successor(&self) -> NodeId {
        self.cfg.successor_of(self.pos)
    }

    /// Wire bytes charged for carrying `batch` on the hop into ring
    /// position `next_pos`. A value's payload is omitted once the
    /// receiving process has already seen it: it proposed the value, it
    /// relayed the value towards the coordinator (Task 1), it is the
    /// coordinator, or — for decision hops — it already received the
    /// payload in the Phase 2A/2B segment. This realizes the paper's rule
    /// that chosen-value forwarding ends at the predecessor of the
    /// proposer (Task 5): each payload crosses each link exactly once,
    /// which is what makes U-Ring Paxos ~90% efficient (Table 3.2).
    fn hop_bytes(&self, batch: &Batch, next_pos: usize, decision_hop: bool) -> u32 {
        // No payload when the receiver has seen it all: the coordinator
        // assembled the batch, and the acceptor segment got the payload
        // in Phase 2A/2B before a decision hop reaches it.
        let seen_all = next_pos == 0 || (decision_hop && next_pos <= self.cfg.last_acceptor_pos());
        let bytes = if seen_all {
            0
        } else {
            // Payloads the receiver has not yet seen: proposed at or past
            // its position (it relayed earlier proposers' values on their
            // way to the coordinator), plus coordinator/off-ring values —
            // all precomputed at pack time (one table read).
            batch.bytes_needed_beyond(next_pos)
        };
        (bytes.min(u32::MAX as u64) as u32).max(self.cfg.ctl_bytes)
    }

    fn next_pos(&self) -> usize {
        (self.pos + 1) % self.cfg.ring.len()
    }

    fn pace(&mut self, ctx: &mut Ctx) {
        // TCP back-pressure: a real proposer blocks in `send` when the
        // socket buffer to its successor is full (§3.3.6). We shed the
        // tick instead (the pacer self-clocks to the sustainable rate).
        let full_buffer =
            self.prop.as_ref().is_some_and(|p| p.inflight >= self.cfg.proposer_inflight);
        let blocked = full_buffer
            || if self.coord.is_some() {
                self.coord.as_ref().is_some_and(|c| c.pending_bytes > 4 * 1024 * 1024)
            } else {
                ctx.tcp_backlog(self.successor()) > 4 * 1024 * 1024
            };
        if blocked {
            ctx.counter_add("rp.shed", 1);
            let interval = self.prop.as_ref().map(|p| p.pacer.interval()).unwrap_or(Dur::millis(1));
            // Consume the missed slots so load does not pile up.
            if let Some(p) = self.prop.as_mut() {
                let _ = p.pacer.due(ctx.now());
            }
            ctx.set_timer(interval, TimerToken(T_PACE));
            return;
        }
        let Some(p) = self.prop.as_mut() else { return };
        let due = p.pacer.due(ctx.now());
        let bytes = p.pacer.msg_bytes();
        let interval = p.pacer.interval();
        let mut new_values = Vec::new();
        for _ in 0..due {
            let seq = p.next_seq;
            p.next_seq += 1;
            new_values.push(Value {
                id: MsgId(((self.me.0 as u64) << 40) | seq),
                proposer: self.me,
                seq,
                bytes,
                submitted: ctx.now(),
                mask: crate::value::ALL_PARTITIONS,
            });
        }
        for v in new_values {
            ctx.counter_add_id(metric::id::PROPOSED, 1);
            if let Some(p) = self.prop.as_mut() {
                p.inflight += 1;
            }
            if self.coord.is_some() {
                self.enqueue(v, ctx);
            } else {
                ctx.tcp_send(self.successor(), UMsg::Forward(v), v.bytes);
            }
        }
        ctx.set_timer(interval, TimerToken(T_PACE));
    }

    fn enqueue(&mut self, v: Value, ctx: &mut Ctx) {
        let Some(c) = self.coord.as_mut() else { return };
        c.pending.push_back(v);
        c.pending_bytes += v.bytes as u64;
        self.try_flush(ctx, false);
    }

    fn try_flush(&mut self, ctx: &mut Ctx, force: bool) {
        loop {
            let Some(c) = self.coord.as_mut() else { return };
            let window_open = (c.outstanding.len() as u32) < self.cfg.window;
            let full = c.pending_bytes >= self.cfg.packet_bytes as u64;
            let partial = force && !c.pending.is_empty();
            if !(window_open && (full || partial)) {
                return;
            }
            let mut vals = Vec::new();
            let mut bytes = 0u64;
            while let Some(v) = c.pending.front() {
                if !vals.is_empty() && bytes + v.bytes as u64 > self.cfg.packet_bytes as u64 {
                    break;
                }
                let v = c.pending.pop_front().expect("front checked");
                c.pending_bytes -= v.bytes as u64;
                bytes += v.bytes as u64;
                vals.push(v);
            }
            let batch: Batch = BatchData::pack(vals, &self.cfg.ring);
            let instance = c.next_instance;
            c.next_instance = instance.next();
            c.outstanding.insert(instance);
            // The coordinator is the first acceptor: vote locally.
            if let Some(a) = self.acceptor.as_mut() {
                let _ = a.receive_2a(instance, self.round, batch.clone());
            }
            let round = self.round;
            let _ = bytes;
            let wire = self.hop_bytes(&batch, self.next_pos(), false);
            let succ = self.successor();
            ctx.counter_add_id(metric::id::INSTANCES, 1);
            if self.cfg.last_acceptor_pos() == 0 {
                // Degenerate single-acceptor ring: the coordinator is also
                // the last acceptor and decides immediately.
                let ring_len = self.cfg.ring.len() as u32;
                self.learner_ready(instance, &batch, ctx);
                if ring_len > 1 {
                    ctx.tcp_send(
                        succ,
                        UMsg::Decision { instance, batch, id_hops_left: ring_len - 1 },
                        wire,
                    );
                }
                // The originator will not see its own decision circulate
                // back (it stops at the predecessor): close it here.
                if let Some(c) = self.coord.as_mut() {
                    c.outstanding.remove(&instance);
                }
                continue;
            }
            ctx.tcp_send(succ, UMsg::Phase2ab { instance, round, batch }, wire);
        }
    }

    fn on_phase2ab(&mut self, instance: InstanceId, round: Round, batch: Batch, ctx: &mut Ctx) {
        if round != self.round {
            return;
        }
        if self.acceptor.is_none() {
            // Not an acceptor (non-contiguous layout): just relay.
            let wire = self.hop_bytes(&batch, self.next_pos(), false);
            ctx.tcp_send(self.successor(), UMsg::Phase2ab { instance, round, batch }, wire);
            return;
        }
        match self.cfg.storage {
            StorageMode::InMemory => self.vote_and_forward(instance, round, batch, ctx),
            StorageMode::SyncDisk => {
                let bytes = (batch_bytes(&batch).min(u32::MAX as u64) as u32).max(1);
                self.disk_pending.insert(instance, (round, batch));
                ctx.disk_write_coalesced(
                    bytes,
                    self.cfg.disk_unit,
                    TimerToken(T_DISK | instance.0),
                );
            }
            StorageMode::AsyncDisk => {
                let bytes = (batch_bytes(&batch).min(u32::MAX as u64) as u32).max(1);
                ctx.disk_write_coalesced(
                    bytes,
                    self.cfg.disk_unit,
                    TimerToken(T_DISK | (u64::MAX >> 8)),
                );
                self.vote_and_forward(instance, round, batch, ctx);
            }
        }
    }

    fn vote_and_forward(
        &mut self,
        instance: InstanceId,
        round: Round,
        batch: Batch,
        ctx: &mut Ctx,
    ) {
        if let Some(a) = self.acceptor.as_mut() {
            if a.receive_2a(instance, round, batch.clone()).is_none() {
                return;
            }
        }
        let ring_len = self.cfg.ring.len() as u32;
        if self.pos == self.cfg.last_acceptor_pos() {
            // Task 4: the last acceptor detects the decision and starts
            // circulating it with the chosen batch.
            let id_hops = ring_len - 1;
            self.learner_ready(instance, &batch, ctx);
            let wire = self.hop_bytes(&batch, self.next_pos(), true);
            ctx.tcp_send(
                self.successor(),
                UMsg::Decision { instance, batch, id_hops_left: id_hops },
                wire,
            );
        } else {
            let wire = self.hop_bytes(&batch, self.next_pos(), false);
            ctx.tcp_send(self.successor(), UMsg::Phase2ab { instance, round, batch }, wire);
        }
    }

    fn on_decision(
        &mut self,
        instance: InstanceId,
        batch: Batch,
        id_hops_left: u32,
        ctx: &mut Ctx,
    ) {
        self.learner_ready(instance, &batch, ctx);
        if self.coord.is_some() {
            if let Some(c) = self.coord.as_mut() {
                c.outstanding.remove(&instance);
            }
            self.try_flush(ctx, false);
        }
        if id_hops_left > 1 {
            let wire = self.hop_bytes(&batch, self.next_pos(), true);
            ctx.tcp_send(
                self.successor(),
                UMsg::Decision { instance, batch, id_hops_left: id_hops_left - 1 },
                wire,
            );
        }
    }

    fn learner_ready(&mut self, instance: InstanceId, batch: &Batch, ctx: &mut Ctx) {
        let Some(l) = self.learner.as_mut() else { return };
        if instance >= l.next_deliver {
            l.ready.entry(instance).or_insert_with(|| batch.clone());
        }
        // U-Ring Paxos lets a learner process a decision before forwarding
        // it (§3.3.6) — delivery happens inline, in instance order.
        loop {
            let Some(l) = self.learner.as_mut() else { return };
            let Some(b) = l.ready.remove(&l.next_deliver) else { return };
            l.next_deliver = l.next_deliver.next();
            let index = l.index;
            let mut fresh = Vec::new();
            for v in b.iter() {
                if l.delivered.fresh(v.proposer, v.seq) {
                    fresh.push(*v);
                }
            }
            if let Some(log) = self.log.as_ref() {
                let mut log = log.borrow_mut();
                for v in &fresh {
                    log.deliver(index, v.id);
                }
            }
            for v in &fresh {
                ctx.counter_add_id(metric::id::DELIVERED_BYTES, v.bytes as u64);
                ctx.counter_add_id(metric::id::DELIVERED_MSGS, 1);
                if v.proposer == self.me {
                    ctx.record_latency(metric::LATENCY, ctx.now().saturating_since(v.submitted));
                    if let Some(p) = self.prop.as_mut() {
                        p.inflight = p.inflight.saturating_sub(1);
                    }
                }
            }
        }
    }
}

impl Actor for URingProcess {
    fn on_start(&mut self, ctx: &mut Ctx) {
        if self.coord.is_some() {
            ctx.set_timer(self.cfg.batch_timeout, TimerToken(T_BATCH));
        }
        if self.prop.is_some() {
            ctx.set_timer(Dur::ZERO, TimerToken(T_PACE));
        }
    }

    fn on_message(&mut self, env: &Envelope, ctx: &mut Ctx) {
        let Some(msg) = env.payload.downcast_ref::<UMsg>() else { return };
        match msg {
            UMsg::Forward(v) => {
                let v = *v;
                if self.coord.is_some() {
                    self.enqueue(v, ctx);
                } else {
                    ctx.tcp_send(self.successor(), UMsg::Forward(v), v.bytes);
                }
            }
            UMsg::Phase2ab { instance, round, batch } => {
                let (instance, round) = (*instance, *round);
                let batch = batch.clone();
                self.on_phase2ab(instance, round, batch, ctx);
            }
            UMsg::Decision { instance, batch, id_hops_left } => {
                let (instance, ih) = (*instance, *id_hops_left);
                let batch = batch.clone();
                self.on_decision(instance, batch, ih, ctx);
            }
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx) {
        match token.0 & KIND_MASK {
            T_BATCH => {
                if self.coord.is_some() {
                    self.try_flush(ctx, true);
                    ctx.set_timer(self.cfg.batch_timeout, TimerToken(T_BATCH));
                }
            }
            T_PACE => self.pace(ctx),
            T_DISK => {
                let payload = token.0 & !KIND_MASK;
                if payload == u64::MAX >> 8 {
                    return;
                }
                let instance = InstanceId(payload);
                if let Some((round, batch)) = self.disk_pending.remove(&instance) {
                    self.vote_and_forward(instance, round, batch, ctx);
                }
            }
            _ => {}
        }
    }
}
