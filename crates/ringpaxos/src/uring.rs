//! Unicast-based Ring Paxos (U-Ring Paxos, thesis Algorithm 3).
//!
//! All processes — proposers, acceptors (the coordinator first), and
//! learners — sit on one logical directed ring connected by TCP links.
//! Values travel the ring to the coordinator (Task 1); the coordinator
//! emits combined `Phase2a/2b` messages that accumulate votes down the
//! acceptor segment; the *last* acceptor detects the decision (Task 4) and
//! the decision circulates the rest of the ring, carrying the chosen batch
//! to the processes that have not seen it (Task 5).
//!
//! Flow control is inherent: TCP back-pressure between neighbours plus a
//! bounded window of outstanding consensus instances (§3.3.6).
//!
//! # Recovery (`with_recovery`)
//!
//! A plain U-Ring deployment stalls forever when a ring process dies
//! (ch. 7's U-Ring lesson, Fig. 7.5) and loses all acceptor and learner
//! state on a process restart. [`URecovery`] attaches the durability
//! subsystem from the `recovery` crate:
//!
//! * acceptors log votes write-ahead (sync or group-commit) through the
//!   simulated disk into a stable store that survives `replace_actor`,
//!   and replay it on restart;
//! * learners checkpoint periodically (delivery watermark, dedup marks,
//!   and the service snapshot via [`recovery::RecoveredApp`]), trimming
//!   the vote log and decided cache below the durable watermark;
//! * a respawned learner resumes from its checkpoint and fetches the
//!   decided suffix from a peer's [`recovery::DecidedCache`] over TCP
//!   (`CatchupReq`/`CatchupRep`), falling back to a full state transfer
//!   of the peer's checkpoint when it has fallen below the peer's trim
//!   point — recovery is checkpoint + suffix, never a full replay;
//! * the ring heals itself after the outage: the coordinator re-proposes
//!   outstanding instances whose 2A/2B-or-decision circulation died at
//!   the crashed process, and proposers re-send values that never got
//!   delivered (both idempotent: acceptors re-vote in place and learners
//!   deduplicate by `(proposer, seq)`).
//!
//! Restarted processes do not resume the proposer role — a proposer's
//! sequence numbers are not logged, and reusing them would make the
//! dedup layer discard its fresh values.
//!
//! # Failover (`cfg.suspicion_timeout`)
//!
//! Setting [`URingConfig::suspicion_timeout`] arms the self-healing
//! subsystem that ch. 7 identifies as U-Ring's missing piece (Fig. 7.5:
//! a single crash otherwise stalls the ring for the whole outage):
//!
//! * **Epoch takeover.** Non-coordinator acceptors suspect a silent
//!   coordinator on a staggered schedule (position *k* waits *k*× the
//!   timeout, so the first surviving acceptor usually wins uncontested)
//!   and run Phase 1 under a higher round. A quorum of promises carries
//!   the acceptors' vote state, from which the new coordinator
//!   reconstructs the instance allocation — re-proposing undecided
//!   instances with the highest-round revealed value and closing
//!   revealed gaps with empty batches. The round acts as a
//!   configuration epoch: `Phase2ab`/`Decision` traffic from a deposed
//!   coordinator fails the round fence at every receiver.
//! * **Ring repair.** The coordinator probes all members when decisions
//!   stop circulating, splices silent processes out of the ring (a new
//!   layout always bumps the round, so layout is a function of the
//!   round), and splices them back in when they ask to rejoin
//!   (`JoinReq`, sent by a process that finds itself outside the layout
//!   carried by `NewRing`/`Heartbeat`).
//! * The coordinator *can* be respawned over its stable store on a
//!   failover-enabled ring: it comes back demoted and re-acquires
//!   leadership (if at all) only through a takeover whose promise
//!   quorum reconstructs the allocation — lifting the restriction the
//!   recovery subsystem alone had to impose.
//!
//! With `suspicion_timeout: None` (the default) none of these timers
//! exist and the historical single-epoch behaviour — including the
//! golden traces — is preserved bit for bit.

use std::collections::VecDeque;
use std::collections::{BTreeMap, BTreeSet};

use abcast::{metric, MsgId, Pacer, SharedLog};

use crate::dedup::DeliveredTracker;
use paxos::acceptor::Acceptor;
use paxos::msg::{quorum, InstanceId, PaxosMsg, Round};
use recovery::{
    Checkpoint, Checkpointer, DecidedCache, LogMode, RecoveredApp, StableHandle, VoteLog,
};
use simnet::prelude::*;

use crate::config::{StorageMode, URingConfig};
use crate::msg::UMsg;
use crate::value::{batch_bytes, Batch, BatchData, Value};

const T_BATCH: u64 = 1 << 56;
const T_PACE: u64 = 2 << 56;
const T_WAL: u64 = 3 << 56;
const T_CKPT: u64 = 4 << 56;
const T_CATCHUP: u64 = 5 << 56;
const T_REPROP: u64 = 6 << 56;
const T_SUSPECT: u64 = 7 << 56;
const T_HEARTBEAT: u64 = 8 << 56;
const T_DISK: u64 = 9 << 56;
const KIND_MASK: u64 = 0xff << 56;

/// Decided instances served per `CatchupRep` chunk.
const CATCHUP_CHUNK: usize = 64;
/// Retry period for an unanswered `CatchupReq`.
const CATCHUP_RETRY: Dur = Dur::millis(100);
/// Scan period of the re-proposal timers (recovery-enabled rings).
const REPROP_INTERVAL: Dur = Dur::millis(50);
/// Age beyond which an outstanding instance / undelivered value is
/// re-sent. Comfortably above one loaded ring round-trip, far below the
/// experiment's outage scale.
const REPROP_AGE: Dur = Dur::millis(150);
/// Checkpoint metadata bytes when no service snapshot is attached.
const CKPT_META_BYTES: u64 = 4096;

/// Recovery configuration for one U-Ring process (see the module docs).
pub struct URecovery {
    /// The node's stable store, shared across process incarnations.
    pub store: StableHandle<Batch>,
    /// How the acceptor vote log commits to disk.
    pub wal_mode: LogMode,
    /// Checkpoint every this many delivered instances (0 = never).
    pub checkpoint_interval: u64,
    /// The replicated service hook snapshotted by checkpoints.
    pub app: Option<Box<dyn RecoveredApp>>,
    /// Catch-up peer; defaults to the last acceptor (the decision
    /// origin), or the coordinator when this process *is* it.
    pub peer: Option<NodeId>,
    /// Decided instances retained in the catch-up cache *below* the
    /// checkpoint watermark. A peer whose outage is shorter than this
    /// slack catches up from the suffix alone; one that fell further
    /// behind gets a state transfer of the whole checkpoint.
    pub catchup_retention: u64,
    /// Whether this incarnation replaces a crashed one (respawn): it
    /// restores from the stable store and catches up from `peer`.
    pub resumed: bool,
}

/// Live recovery state of one process.
struct RecState {
    store: StableHandle<Batch>,
    wal: VoteLog<Batch>,
    ckpt: Option<Checkpointer<Batch>>,
    cache: DecidedCache<Batch>,
    app: Option<Box<dyn RecoveredApp>>,
    peer: NodeId,
    retention: u64,
    /// Values this learner delivered across all incarnations (the
    /// checkpoint's `log_pos` basis).
    delivered_count: u64,
    catching_up: bool,
    catchup_started: Time,
    /// Delivery position at the previous catch-up tick when a stuck gap
    /// was observed; a gap persisting across two ticks re-enters
    /// catch-up (e.g. after completing against a peer that was itself
    /// recovering and served an empty horizon).
    last_gap: Option<InstanceId>,
    /// When the periodic catch-up tick last ran. A node brought back up
    /// with its state preserved lost every timer that expired while it
    /// was down — including this chain — and on a failover-enabled ring
    /// the others kept deciding around it, so the gap-detection tick is
    /// exactly what it needs. Heartbeat receipt re-arms a chain whose
    /// last tick is implausibly old (see `on_heartbeat`).
    last_tick: Time,
}

/// Coordinator-only state.
struct UCoord {
    pending: VecDeque<Value>,
    pending_bytes: u64,
    next_instance: InstanceId,
    outstanding: BTreeSet<InstanceId>,
    /// Batches of outstanding instances with their last-send time, kept
    /// on recovery- or failover-enabled rings for the re-proposal timer.
    outstanding_batches: BTreeMap<InstanceId, (Batch, Time)>,
    /// Last time a decision circulated back (ring liveness signal).
    last_progress: Time,
    /// In-progress ring-repair probe.
    repair: Option<URepair>,
}

/// An in-progress coordinator takeover: Phase 1 under `round`.
struct UTakeover {
    round: Round,
    started: Time,
    /// Acceptors whose promise arrived.
    promises: BTreeSet<NodeId>,
    /// Highest-round revealed vote per instance.
    votes: BTreeMap<InstanceId, (Round, Batch)>,
    /// Lowest delivery watermark among the promising acceptors — the
    /// re-proposal window starts here.
    db_min: InstanceId,
    /// Highest delivery watermark among the promising acceptors —
    /// instances past it with no revealed vote are provably undecided
    /// (see `become_coordinator`) and get empty gap-fills.
    db_max: InstanceId,
}

/// An in-progress ring-repair probe (coordinator side).
struct URepair {
    responders: BTreeSet<NodeId>,
    started: Time,
}

/// One U-Ring Paxos process.
pub struct URingProcess {
    cfg: URingConfig,
    me: NodeId,
    pos: usize,
    round: Round,
    coord: Option<UCoord>,
    acceptor: Option<Acceptor<Batch>>,
    /// Learner state: buffered decisions waiting for in-order delivery.
    learner: Option<ULearner>,
    prop: Option<UProposer>,
    log: Option<SharedLog>,
    /// Phase2ab messages awaiting a pending sync disk write, per instance
    /// (the non-recovery `StorageMode` path).
    disk_pending: BTreeMap<InstanceId, (Round, Batch)>,
    rec: Option<RecState>,
    /// Original full membership (deployment order). Reformed rings draw
    /// from it, and `NewRing`/`Heartbeat`/`Ping` reach all of it, so
    /// spliced-out or respawned processes resynchronize.
    all_nodes: Vec<NodeId>,
    /// Nodes holding the acceptor role — fixed at deployment; promise
    /// quorums are counted over this set regardless of who is currently
    /// spliced into the ring.
    acceptor_nodes: Vec<NodeId>,
    /// Whether this process is currently outside the ring layout (it
    /// was spliced out while unreachable). Excluded processes still
    /// deliver decisions and answer probes, but stop relaying.
    excluded: bool,
    /// Last time coordinator traffic in the current round was seen.
    last_coord_activity: Time,
    takeover: Option<UTakeover>,
}

struct ULearner {
    index: usize,
    ready: BTreeMap<InstanceId, Batch>,
    next_deliver: InstanceId,
    /// Exactly-once filter over delivered values, bounded by per-proposer
    /// watermarks instead of an ever-growing id set.
    delivered: DeliveredTracker,
}

struct UProposer {
    pacer: Pacer,
    next_seq: u64,
    /// Values proposed but not yet observed delivered locally.
    inflight: u32,
    /// Undelivered values with their last-send time, for re-proposal on
    /// recovery-enabled rings (a crashed ring member black-holes the
    /// `Forward` hop; without re-sending, these slots leak forever).
    unacked: BTreeMap<u64, (Value, Time)>,
    /// Whether `unacked` is maintained (recovery-enabled rings only).
    track: bool,
}

impl URingProcess {
    /// Creates the process at ring position `pos` (must host node `me`).
    pub fn new(
        cfg: URingConfig,
        pos: usize,
        proposer: Option<Pacer>,
        learner_log: Option<SharedLog>,
    ) -> URingProcess {
        let me = cfg.ring[pos];
        // Phase 1 pre-executed at deployment: round 1 owned by position 0.
        let round = Round::new(1, 0);
        let failover = cfg.suspicion_timeout.is_some();
        let is_coord = pos == 0;
        let is_acceptor = cfg.acceptor_positions.contains(&pos);
        let learner_index = cfg.learner_positions.iter().position(|&p| p == pos);
        let coord = is_coord.then(|| UCoord {
            pending: VecDeque::new(),
            pending_bytes: 0,
            next_instance: InstanceId(0),
            outstanding: BTreeSet::new(),
            outstanding_batches: BTreeMap::new(),
            last_progress: Time::ZERO,
            repair: None,
        });
        let acceptor = is_acceptor.then(|| {
            let mut a = Acceptor::new();
            let _ = a.receive_1a(round);
            a
        });
        let learner = learner_index.map(|index| ULearner {
            index,
            ready: BTreeMap::new(),
            next_deliver: InstanceId(0),
            delivered: DeliveredTracker::new(),
        });
        let all_nodes = cfg.ring.clone();
        let acceptor_nodes: Vec<NodeId> =
            cfg.acceptor_positions.iter().map(|&p| cfg.ring[p]).collect();
        URingProcess {
            cfg,
            me,
            pos,
            round,
            coord,
            acceptor,
            learner,
            prop: proposer.map(|pacer| UProposer {
                pacer,
                next_seq: 0,
                inflight: 0,
                unacked: BTreeMap::new(),
                // Failover implies a crashed member can black-hole the
                // `Forward` hop: track undelivered values for re-send.
                track: failover,
            }),
            log: learner_log,
            disk_pending: BTreeMap::new(),
            rec: None,
            all_nodes,
            acceptor_nodes,
            excluded: false,
            last_coord_activity: Time::ZERO,
            takeover: None,
        }
    }

    /// Attaches the recovery subsystem (see the module docs). Must be
    /// called before the process is installed. When `rec.resumed`, the
    /// process restores acceptor votes and the learner checkpoint from
    /// the stable store here, and starts catch-up in `on_start`.
    pub fn with_recovery(mut self, rec: URecovery) -> URingProcess {
        let peer = rec.peer.unwrap_or_else(|| {
            let last = self.cfg.last_acceptor_pos();
            if self.pos == last {
                self.cfg.ring[0]
            } else {
                self.cfg.ring[last]
            }
        });
        let mut state = RecState {
            wal: VoteLog::new(rec.store.clone(), rec.wal_mode, self.cfg.disk_unit, T_WAL),
            ckpt: (rec.checkpoint_interval > 0)
                .then(|| Checkpointer::new(rec.store.clone(), rec.checkpoint_interval, T_CKPT)),
            cache: DecidedCache::new(),
            app: rec.app,
            peer,
            retention: rec.catchup_retention,
            delivered_count: 0,
            catching_up: false,
            catchup_started: Time::ZERO,
            last_gap: None,
            last_tick: Time::ZERO,
            store: rec.store,
        };
        if rec.resumed {
            if self.coord.is_some() {
                assert!(
                    self.failover_on(),
                    "the U-Ring coordinator can only be respawned on a failover-enabled \
                     ring (set cfg.suspicion_timeout): its instance allocation is not \
                     logged, so a fresh incarnation must re-acquire it through an epoch \
                     takeover (see the module docs)"
                );
                // Come back demoted: a peer has taken (or will take)
                // over; failing that, this node's own suspicion timer
                // drives a takeover whose promise quorum reconstructs
                // the allocation.
                self.coord = None;
            }
            // Acceptor role: replay the durable vote log. The promised
            // round also fences this process: stale pre-crash epochs
            // fail the round check until a NewRing/Heartbeat resyncs us.
            if self.acceptor.is_some() {
                let (promised, votes) = state.wal.replay();
                let promised = promised.max(self.round);
                self.round = promised;
                self.acceptor = Some(Acceptor::restore(promised, votes));
            }
            // Learner role: restore the durable checkpoint.
            let cp = Checkpointer::recover(&state.store).unwrap_or_default();
            if let Some(l) = self.learner.as_mut() {
                l.next_deliver = cp.watermark;
                l.delivered = DeliveredTracker::restore(cp.marks.clone(), cp.parked.clone());
                state.delivered_count = cp.log_pos;
                state.cache.trim_below(cp.watermark);
                if let Some(app) = state.app.as_mut() {
                    app.restore(cp.state.as_ref());
                }
                if let Some(log) = self.log.as_ref() {
                    log.lock().unwrap().mark_restart(l.index, cp.log_pos as usize);
                }
                state.catching_up = true;
            }
        }
        if let Some(p) = self.prop.as_mut() {
            p.track = true;
        }
        self.rec = Some(state);
        self
    }

    /// The instance this process resumes delivering from (tests).
    pub fn next_deliver(&self) -> Option<InstanceId> {
        self.learner.as_ref().map(|l| l.next_deliver)
    }

    fn successor(&self) -> NodeId {
        self.cfg.successor_of(self.pos)
    }

    /// Wire bytes charged for carrying `batch` on the hop into ring
    /// position `next_pos`. A value's payload is omitted once the
    /// receiving process has already seen it: it proposed the value, it
    /// relayed the value towards the coordinator (Task 1), it is the
    /// coordinator, or — for decision hops — it already received the
    /// payload in the Phase 2A/2B segment. This realizes the paper's rule
    /// that chosen-value forwarding ends at the predecessor of the
    /// proposer (Task 5): each payload crosses each link exactly once,
    /// which is what makes U-Ring Paxos ~90% efficient (Table 3.2).
    fn hop_bytes(&self, batch: &Batch, next_pos: usize, decision_hop: bool) -> u32 {
        // No payload when the receiver has seen it all: the coordinator
        // assembled the batch, and the acceptor segment got the payload
        // in Phase 2A/2B before a decision hop reaches it.
        let seen_all = next_pos == 0 || (decision_hop && next_pos <= self.cfg.last_acceptor_pos());
        let bytes = if seen_all {
            0
        } else {
            // Payloads the receiver has not yet seen: proposed at or past
            // its position (it relayed earlier proposers' values on their
            // way to the coordinator), plus coordinator/off-ring values —
            // all precomputed at pack time (one table read).
            batch.bytes_needed_beyond(next_pos)
        };
        (bytes.min(u32::MAX as u64) as u32).max(self.cfg.ctl_bytes)
    }

    fn next_pos(&self) -> usize {
        (self.pos + 1) % self.cfg.ring.len()
    }

    fn pace(&mut self, ctx: &mut Ctx) {
        // TCP back-pressure: a real proposer blocks in `send` when the
        // socket buffer to its successor is full (§3.3.6). We shed the
        // tick instead (the pacer self-clocks to the sustainable rate).
        let full_buffer =
            self.prop.as_ref().is_some_and(|p| p.inflight >= self.cfg.proposer_inflight);
        // A spliced-out process has no live successor: shed until the
        // coordinator splices us back in (JoinReq).
        let blocked = self.excluded
            || full_buffer
            || if self.coord.is_some() {
                self.coord.as_ref().is_some_and(|c| c.pending_bytes > 4 * 1024 * 1024)
            } else {
                ctx.tcp_backlog(self.successor()) > 4 * 1024 * 1024
            };
        if blocked {
            ctx.counter_add("rp.shed", 1);
            let interval = self.prop.as_ref().map(|p| p.pacer.interval()).unwrap_or(Dur::millis(1));
            // Consume the missed slots so load does not pile up.
            if let Some(p) = self.prop.as_mut() {
                let _ = p.pacer.due(ctx.now());
            }
            ctx.set_timer(interval, TimerToken(T_PACE));
            return;
        }
        let Some(p) = self.prop.as_mut() else { return };
        let due = p.pacer.due(ctx.now());
        let bytes = p.pacer.msg_bytes();
        let interval = p.pacer.interval();
        let track = p.track;
        let mut new_values = Vec::new();
        for _ in 0..due {
            let seq = p.next_seq;
            p.next_seq += 1;
            new_values.push(Value {
                id: MsgId(((self.me.0 as u64) << 40) | seq),
                proposer: self.me,
                seq,
                bytes,
                submitted: ctx.now(),
                mask: crate::value::ALL_PARTITIONS,
            });
        }
        for v in new_values {
            ctx.counter_add_id(metric::id::PROPOSED, 1);
            if let Some(p) = self.prop.as_mut() {
                p.inflight += 1;
                if track {
                    p.unacked.insert(v.seq, (v, ctx.now()));
                }
            }
            if self.coord.is_some() {
                self.enqueue(v, ctx);
            } else {
                ctx.tcp_send(self.successor(), UMsg::Forward(v), v.bytes);
            }
        }
        ctx.set_timer(interval, TimerToken(T_PACE));
    }

    fn enqueue(&mut self, v: Value, ctx: &mut Ctx) {
        let Some(c) = self.coord.as_mut() else { return };
        c.pending.push_back(v);
        c.pending_bytes += v.bytes as u64;
        self.try_flush(ctx, false);
    }

    fn try_flush(&mut self, ctx: &mut Ctx, force: bool) {
        let keep_batches = self.rec.is_some() || self.failover_on();
        loop {
            let Some(c) = self.coord.as_mut() else { return };
            let window_open = (c.outstanding.len() as u32) < self.cfg.window;
            let full = c.pending_bytes >= self.cfg.packet_bytes as u64;
            let partial = force && !c.pending.is_empty();
            if !(window_open && (full || partial)) {
                return;
            }
            let mut vals = Vec::new();
            let mut bytes = 0u64;
            while let Some(v) = c.pending.front() {
                if !vals.is_empty() && bytes + v.bytes as u64 > self.cfg.packet_bytes as u64 {
                    break;
                }
                let v = c.pending.pop_front().expect("front checked");
                c.pending_bytes -= v.bytes as u64;
                bytes += v.bytes as u64;
                vals.push(v);
            }
            // Probe stamp: a PROPOSE span opens at the earliest client
            // submission the batch covers (captured before `pack`
            // consumes the values).
            let first_submitted =
                if ctx.probes_enabled() { vals.iter().map(|v| v.submitted).min() } else { None };
            let batch: Batch = BatchData::pack(vals, &self.cfg.ring);
            let instance = c.next_instance;
            c.next_instance = instance.next();
            c.outstanding.insert(instance);
            if keep_batches {
                c.outstanding_batches.insert(instance, (batch.clone(), ctx.now()));
            }
            ctx.counter_add_id(metric::id::INSTANCES, 1);
            if let Some(at) = first_submitted {
                ctx.probe_at(probe::code::PROPOSE, probe::span_key(0, instance.0), at);
            }
            self.send_2ab(instance, batch, ctx);
        }
    }

    /// Emits the combined 2A/2B chain for `instance` under the current
    /// round: local vote first (the coordinator is the first acceptor),
    /// then down the ring — or an immediate decision on the degenerate
    /// single-acceptor layout. Also used to re-drive outstanding
    /// instances through a reformed ring and to re-propose the takeover
    /// window under a new epoch.
    fn send_2ab(&mut self, instance: InstanceId, batch: Batch, ctx: &mut Ctx) {
        if ctx.probes_enabled() {
            ctx.probe(probe::code::PHASE2A, probe::span_key(0, instance.0));
        }
        // The coordinator is the first acceptor: vote locally.
        if let Some(a) = self.acceptor.as_mut() {
            let _ = a.receive_2a(instance, self.round, batch.clone());
        }
        let round = self.round;
        let wire = self.hop_bytes(&batch, self.next_pos(), false);
        let succ = self.successor();
        if self.cfg.last_acceptor_pos() == 0 {
            // Degenerate single-acceptor ring: the coordinator is also
            // the last acceptor and decides immediately.
            let ring_len = self.cfg.ring.len() as u32;
            if ctx.probes_enabled() {
                ctx.probe(probe::code::DECIDE, probe::span_key(0, instance.0));
            }
            self.learner_ready(instance, &batch, ctx);
            if ring_len > 1 {
                ctx.tcp_send(
                    succ,
                    UMsg::Decision { instance, batch, id_hops_left: ring_len - 1, round },
                    wire,
                );
            }
            // The originator will not see its own decision circulate
            // back (it stops at the predecessor): close it here.
            if let Some(c) = self.coord.as_mut() {
                c.outstanding.remove(&instance);
                c.outstanding_batches.remove(&instance);
            }
            return;
        }
        ctx.tcp_send(succ, UMsg::Phase2ab { instance, round, batch }, wire);
    }

    fn on_phase2ab(&mut self, instance: InstanceId, round: Round, batch: Batch, ctx: &mut Ctx) {
        if round != self.round {
            // The epoch fence: 2A/2B traffic from a deposed coordinator
            // (or a stale ring layout) dies here. A vote under a stale
            // layout could otherwise complete a "decision" at the old
            // last acceptor without a true quorum.
            ctx.counter_add("rp.stale_2ab", 1);
            return;
        }
        self.last_coord_activity = ctx.now();
        if self.excluded {
            return;
        }
        if self.acceptor.is_none() {
            // Not an acceptor (non-contiguous layout): just relay.
            let wire = self.hop_bytes(&batch, self.next_pos(), false);
            ctx.tcp_send(self.successor(), UMsg::Phase2ab { instance, round, batch }, wire);
            return;
        }
        if let Some(rec) = self.rec.as_mut() {
            // Recovery-enabled: write-ahead log the vote; `vote_and_forward`
            // runs from the WAL completion (T_WAL). Re-proposals of an
            // already-durable vote skip the disk and vote immediately.
            if rec.store.lock().unwrap().votes.contains_key(&instance) {
                self.vote_and_forward(instance, round, batch, ctx);
            } else {
                let bytes = (batch_bytes(&batch).min(u32::MAX as u64) as u32).max(1);
                rec.wal.append(instance, round, batch, bytes, ctx);
            }
            return;
        }
        match self.cfg.storage {
            StorageMode::InMemory => self.vote_and_forward(instance, round, batch, ctx),
            StorageMode::SyncDisk => {
                let bytes = (batch_bytes(&batch).min(u32::MAX as u64) as u32).max(1);
                self.disk_pending.insert(instance, (round, batch));
                ctx.disk_write_coalesced(
                    bytes,
                    self.cfg.disk_unit,
                    TimerToken(T_DISK | instance.0),
                );
            }
            StorageMode::AsyncDisk => {
                let bytes = (batch_bytes(&batch).min(u32::MAX as u64) as u32).max(1);
                ctx.disk_write_coalesced(
                    bytes,
                    self.cfg.disk_unit,
                    TimerToken(T_DISK | (u64::MAX >> 8)),
                );
                self.vote_and_forward(instance, round, batch, ctx);
            }
        }
    }

    fn vote_and_forward(
        &mut self,
        instance: InstanceId,
        round: Round,
        batch: Batch,
        ctx: &mut Ctx,
    ) {
        if let Some(a) = self.acceptor.as_mut() {
            if a.receive_2a(instance, round, batch.clone()).is_none() {
                return;
            }
        }
        if ctx.probes_enabled() {
            ctx.probe(probe::code::PHASE2B, probe::span_key(0, instance.0));
        }
        let ring_len = self.cfg.ring.len() as u32;
        if self.pos == self.cfg.last_acceptor_pos() {
            // Task 4: the last acceptor detects the decision and starts
            // circulating it with the chosen batch.
            let id_hops = ring_len - 1;
            if ctx.probes_enabled() {
                ctx.probe(probe::code::DECIDE, probe::span_key(0, instance.0));
            }
            self.learner_ready(instance, &batch, ctx);
            let wire = self.hop_bytes(&batch, self.next_pos(), true);
            ctx.tcp_send(
                self.successor(),
                UMsg::Decision { instance, batch, id_hops_left: id_hops, round },
                wire,
            );
        } else {
            let wire = self.hop_bytes(&batch, self.next_pos(), false);
            ctx.tcp_send(self.successor(), UMsg::Phase2ab { instance, round, batch }, wire);
        }
    }

    fn on_decision(
        &mut self,
        instance: InstanceId,
        batch: Batch,
        id_hops_left: u32,
        round: Round,
        ctx: &mut Ctx,
    ) {
        // Delivery is unconditionally safe — a decision is a decision,
        // whatever epoch we are in.
        self.learner_ready(instance, &batch, ctx);
        if self.coord.is_some() {
            let now = ctx.now();
            if let Some(c) = self.coord.as_mut() {
                c.outstanding.remove(&instance);
                c.outstanding_batches.remove(&instance);
                c.last_progress = now;
            }
            self.try_flush(ctx, false);
        }
        // Forwarding follows the ring layout, so it needs the epoch to
        // match (and this process to still be part of the layout).
        if id_hops_left > 1 && round == self.round && !self.excluded {
            let wire = self.hop_bytes(&batch, self.next_pos(), true);
            ctx.tcp_send(
                self.successor(),
                UMsg::Decision { instance, batch, id_hops_left: id_hops_left - 1, round },
                wire,
            );
        }
    }

    fn learner_ready(&mut self, instance: InstanceId, batch: &Batch, ctx: &mut Ctx) {
        {
            let Some(l) = self.learner.as_mut() else { return };
            if instance >= l.next_deliver {
                l.ready.entry(instance).or_insert_with(|| batch.clone());
            }
        }
        // U-Ring Paxos lets a learner process a decision before forwarding
        // it (§3.3.6) — delivery happens inline, in instance order.
        loop {
            let Some(l) = self.learner.as_mut() else { return };
            let Some(b) = l.ready.remove(&l.next_deliver) else { break };
            let delivered_instance = l.next_deliver;
            l.next_deliver = l.next_deliver.next();
            let index = l.index;
            if ctx.probes_enabled() {
                ctx.probe(probe::code::DELIVER, probe::span_key(0, delivered_instance.0));
            }
            let mut fresh = Vec::new();
            for v in b.iter() {
                if l.delivered.fresh(v.proposer, v.seq) {
                    fresh.push(*v);
                }
            }
            if let Some(rec) = self.rec.as_mut() {
                rec.cache.record(delivered_instance, b.clone());
                rec.delivered_count += fresh.len() as u64;
            }
            if let Some(log) = self.log.as_ref() {
                let mut log = log.lock().unwrap();
                for v in &fresh {
                    log.deliver(index, v.id);
                }
            }
            for v in &fresh {
                ctx.counter_add_id(metric::id::DELIVERED_BYTES, v.bytes as u64);
                ctx.counter_add_id(metric::id::DELIVERED_MSGS, 1);
                if let Some(app) = self.rec.as_mut().and_then(|r| r.app.as_mut()) {
                    app.apply(v.proposer.0 as u64, v.seq, v.bytes);
                }
                if v.proposer == self.me {
                    // `since`, not `saturating_since`: delivery strictly
                    // follows submission, so a clamped-to-zero sample
                    // here would be masking an engine ordering bug.
                    ctx.record_latency(metric::LATENCY, ctx.now().since(v.submitted));
                    if let Some(p) = self.prop.as_mut() {
                        p.inflight = p.inflight.saturating_sub(1);
                        p.unacked.remove(&v.seq);
                    }
                }
            }
        }
        self.maybe_checkpoint(ctx);
    }

    /// Starts a checkpoint when one is due (recovery-enabled learners).
    fn maybe_checkpoint(&mut self, ctx: &mut Ctx) {
        let Some(rec) = self.rec.as_mut() else { return };
        let Some(ckpt) = rec.ckpt.as_mut() else { return };
        let Some(l) = self.learner.as_ref() else { return };
        if !ckpt.due(l.next_deliver) {
            return;
        }
        let (marks, parked) = l.delivered.export();
        let app = &mut rec.app;
        ckpt.maybe_checkpoint(
            l.next_deliver,
            rec.delivered_count,
            marks,
            parked,
            || match app {
                Some(a) => a.snapshot(),
                None => (CKPT_META_BYTES, None),
            },
            ctx,
        );
    }

    /// Serves a catch-up request from a recovering peer: the decided
    /// suffix from `next`, preceded by this node's checkpoint when the
    /// peer has fallen below the cache's trim point (state transfer).
    fn serve_catchup(&mut self, from: NodeId, next: InstanceId, ctx: &mut Ctx) {
        let Some(rec) = self.rec.as_ref() else { return };
        let mut wire = self.cfg.ctl_bytes as u64;
        let mut eff = next;
        let snap = if next < rec.cache.base() {
            let cp = rec.store.lock().unwrap().checkpoint.clone();
            if let Some(cp) = cp.as_ref() {
                eff = cp.watermark;
                wire += cp.state_bytes;
            }
            cp
        } else {
            None
        };
        let batches = rec.cache.serve(eff, CATCHUP_CHUNK);
        for (_, b) in &batches {
            wire += batch_bytes(b);
        }
        let upto = rec.cache.horizon();
        ctx.tcp_send(
            from,
            UMsg::CatchupRep { snap, batches, upto },
            wire.min(u32::MAX as u64) as u32,
        );
    }

    fn on_catchup_rep(
        &mut self,
        snap: Option<Checkpoint>,
        batches: Vec<(InstanceId, Batch)>,
        upto: InstanceId,
        ctx: &mut Ctx,
    ) {
        {
            let Some(rec) = self.rec.as_mut() else { return };
            if !rec.catching_up {
                return; // a retry's duplicate reply after completion
            }
            if let Some(cp) = snap {
                let l = self.learner.as_mut().expect("catch-up requester is a learner");
                if cp.watermark > l.next_deliver {
                    // State transfer: adopt the peer's checkpoint.
                    l.next_deliver = cp.watermark;
                    l.ready = l.ready.split_off(&cp.watermark);
                    l.delivered = DeliveredTracker::restore(cp.marks.clone(), cp.parked.clone());
                    rec.delivered_count = cp.log_pos;
                    rec.cache.trim_below(cp.watermark);
                    if let Some(app) = rec.app.as_mut() {
                        app.restore(cp.state.as_ref());
                    }
                    if let Some(log) = self.log.as_ref() {
                        log.lock().unwrap().mark_state_transfer(l.index, cp.log_pos as usize);
                    }
                    ctx.counter_add("rec.state_transfers", 1);
                    ctx.counter_add("rec.transfer_bytes", cp.state_bytes);
                }
            }
        }
        let got = batches.len() as u64;
        ctx.counter_add("rec.catchup_instances", got);
        for (i, b) in batches {
            // `id_hops_left: 1` delivers locally without forwarding:
            // catch-up traffic must not re-enter the ring circulation.
            let round = self.round;
            self.on_decision(i, b, 1, round, ctx);
        }
        let next = self.learner.as_ref().map(|l| l.next_deliver).unwrap_or(upto);
        let rec = self.rec.as_mut().expect("checked above");
        if next >= upto {
            // Caught up to the responder's horizon; the live ring flow
            // (buffered in `ready` during catch-up) takes over.
            rec.catching_up = false;
            let took = ctx.now().since(rec.catchup_started);
            ctx.record_latency("rec.ttr", took);
        } else if got > 0 {
            let peer = rec.peer;
            ctx.tcp_send(peer, UMsg::CatchupReq { from: self.me, next }, self.cfg.ctl_bytes);
        }
        // `got == 0` below the horizon: the responder could not serve
        // (e.g. it is itself recovering); the T_CATCHUP retry re-asks.
    }

    /// Periodic re-send scan (recovery- or failover-enabled rings): the
    /// coordinator re-proposes outstanding instances whose circulation
    /// stalled, and proposers re-send undelivered values. Both paths are
    /// idempotent.
    fn repropose_check(&mut self, ctx: &mut Ctx) {
        if self.rec.is_none() && !self.failover_on() {
            return;
        }
        if self.excluded {
            // No live successor; re-sends resume after the splice-in.
            ctx.set_timer(REPROP_INTERVAL, TimerToken(T_REPROP));
            return;
        }
        let now = ctx.now();
        // Coordinator: re-send the 2A/2B chain for stalled instances.
        let mut resend: Vec<(InstanceId, Batch)> = Vec::new();
        if let Some(c) = self.coord.as_mut() {
            for (&i, (batch, sent)) in c.outstanding_batches.iter_mut() {
                if now.saturating_since(*sent) >= REPROP_AGE {
                    *sent = now;
                    resend.push((i, batch.clone()));
                }
            }
        }
        let round = self.round;
        for (instance, batch) in resend {
            ctx.counter_add("rec.reproposals", 1);
            let wire = self.hop_bytes(&batch, self.next_pos(), false);
            ctx.tcp_send(self.successor(), UMsg::Phase2ab { instance, round, batch }, wire);
        }
        // Proposer: re-send values nobody delivered.
        let succ = self.successor();
        let am_coord = self.coord.is_some();
        let mut requeue: Vec<Value> = Vec::new();
        if let Some(p) = self.prop.as_mut() {
            for (v, sent) in p.unacked.values_mut() {
                if now.saturating_since(*sent) >= REPROP_AGE {
                    *sent = now;
                    requeue.push(*v);
                }
            }
        }
        for v in requeue {
            ctx.counter_add("rec.value_resends", 1);
            if am_coord {
                self.enqueue(v, ctx);
            } else {
                ctx.tcp_send(succ, UMsg::Forward(v), v.bytes);
            }
        }
        ctx.set_timer(REPROP_INTERVAL, TimerToken(T_REPROP));
    }

    // ------------------------------------------------------------------
    // Failover: epoch takeover and ring repair (see the module docs).
    // ------------------------------------------------------------------

    fn failover_on(&self) -> bool {
        self.cfg.suspicion_timeout.is_some()
    }

    fn suspicion_timeout(&self) -> Dur {
        self.cfg.suspicion_timeout.unwrap_or(Dur::millis(200))
    }

    /// This process's delivery watermark (everything below is decided
    /// and delivered here).
    fn decided_below_here(&self) -> InstanceId {
        self.learner.as_ref().map(|l| l.next_deliver).unwrap_or(InstanceId(0))
    }

    /// Persists a promised round through the stable store so a respawned
    /// acceptor does not regress below it.
    fn persist_promise(&mut self, round: Round) {
        if self.acceptor.is_some() {
            if let Some(rec) = self.rec.as_ref() {
                rec.store.lock().unwrap().log_promise(round);
            }
        }
    }

    /// This acceptor's Phase 1B payload for `round`: its accepted votes
    /// from its own delivery watermark up (anything below it has been
    /// delivered here, so the new coordinator never needs it from us),
    /// plus that watermark.
    fn own_votes(&mut self, round: Round) -> (Vec<(InstanceId, Round, Batch)>, InstanceId) {
        let decided_below = self.decided_below_here();
        let votes = match self.acceptor.as_mut().and_then(|a| a.receive_1a(round)) {
            Some(PaxosMsg::Phase1b { votes, .. }) => {
                votes.into_iter().filter(|(i, _, _)| *i >= decided_below).collect()
            }
            _ => Vec::new(),
        };
        (votes, decided_below)
    }

    /// Adopts `ring` as the current layout: rewrites the ring, recomputes
    /// the acceptor positions (the acceptor *role* follows the node and
    /// is fixed at deployment) and this process's position. A process
    /// absent from the layout marks itself excluded.
    fn adopt_layout(&mut self, ring: &[NodeId]) {
        self.cfg.ring = ring.to_vec();
        self.cfg.acceptor_positions = ring
            .iter()
            .enumerate()
            .filter(|(_, n)| self.acceptor_nodes.contains(n))
            .map(|(p, _)| p)
            .collect();
        match ring.iter().position(|&n| n == self.me) {
            Some(p) => {
                self.pos = p;
                self.excluded = false;
            }
            None => self.excluded = true,
        }
    }

    /// Records the configuration epoch in the delivery log so the
    /// checker can verify per-learner epoch monotonicity.
    fn mark_epoch(&mut self) {
        if let (Some(l), Some(log)) = (self.learner.as_ref(), self.log.as_ref()) {
            let epoch = (self.round.counter << 32) | self.round.owner as u64;
            log.lock().unwrap().mark_epoch(l.index, epoch);
        }
    }

    /// Announces the current round + layout to the full membership (not
    /// just the current ring: spliced-out processes must learn they can
    /// rejoin, and stale coordinators that they are deposed).
    fn broadcast_ring(&mut self, ctx: &mut Ctx) {
        let msg = UMsg::NewRing { round: self.round, coord: self.me, ring: self.cfg.ring.clone() };
        for &n in &self.all_nodes {
            if n != self.me {
                ctx.tcp_send(n, msg.clone(), self.cfg.ctl_bytes);
            }
        }
    }

    /// T_SUSPECT tick: a non-coordinator acceptor that has heard nothing
    /// from the coordinator for its staggered delay starts a takeover.
    /// Position `k` waits `k`× the timeout, so the first surviving
    /// acceptor usually wins uncontested; a contested (higher) round
    /// simply deposes the lower one.
    fn suspect_check(&mut self, ctx: &mut Ctx) {
        if !self.failover_on() || self.coord.is_some() {
            return; // chain ends; coordinators run the heartbeat chain
        }
        let timeout = self.suspicion_timeout();
        let now = ctx.now();
        if let Some(t) = self.takeover.as_ref() {
            // Takeover in flight but the promise quorum never arrived
            // (another acceptor died too, or our Phase 1A raced a
            // partition): bump the round and try again.
            if now.saturating_since(t.started) > timeout * 4 {
                self.start_takeover(ctx);
            }
            ctx.set_timer(timeout, TimerToken(T_SUSPECT));
            return;
        }
        if self.acceptor.is_some() && !self.excluded {
            let my_delay = timeout * (self.pos.max(1) as u64);
            if now.saturating_since(self.last_coord_activity) > my_delay {
                self.start_takeover(ctx);
            }
        }
        ctx.set_timer(timeout, TimerToken(T_SUSPECT));
    }

    /// Phase 1 under a fresh round owned by this node: collect promises
    /// (with accepted votes) from the fixed acceptor set; a quorum makes
    /// this node the coordinator of the new epoch.
    fn start_takeover(&mut self, ctx: &mut Ctx) {
        let round = self.round.next_for(self.me.0 as u32);
        self.round = round;
        self.persist_promise(round);
        self.takeover = Some(UTakeover {
            round,
            started: ctx.now(),
            promises: BTreeSet::new(),
            votes: BTreeMap::new(),
            db_min: InstanceId(u64::MAX),
            db_max: InstanceId(0),
        });
        ctx.counter_add("rp.takeover", 1);
        let msg = UMsg::Phase1a { round, from: self.me };
        for &n in &self.acceptor_nodes.clone() {
            if n != self.me {
                ctx.tcp_send(n, msg.clone(), self.cfg.ctl_bytes);
            }
        }
        // Self-promise with this acceptor's own vote state.
        let (votes, decided_below) = self.own_votes(round);
        self.on_phase1b(round, self.me, votes, decided_below, ctx);
    }

    fn on_phase1a(&mut self, round: Round, from: NodeId, ctx: &mut Ctx) {
        if !self.failover_on() || round <= self.round {
            return; // stale candidate; it will adopt our NewRing
        }
        self.round = round;
        self.persist_promise(round);
        // A lower-round takeover of our own has lost.
        if self.takeover.as_ref().is_some_and(|t| t.round < round) {
            self.takeover = None;
        }
        // If we were the coordinator, the higher round deposes us.
        self.depose(ctx);
        if self.acceptor.is_none() {
            return;
        }
        let (votes, decided_below) = self.own_votes(round);
        let wire = (self.cfg.ctl_bytes as u64
            + votes.iter().map(|(_, _, b)| batch_bytes(b)).sum::<u64>())
        .min(u32::MAX as u64) as u32;
        ctx.tcp_send(from, UMsg::Phase1b { round, from: self.me, votes, decided_below }, wire);
    }

    fn on_phase1b(
        &mut self,
        round: Round,
        from: NodeId,
        votes: Vec<(InstanceId, Round, Batch)>,
        decided_below: InstanceId,
        ctx: &mut Ctx,
    ) {
        let quorum_n = quorum(self.acceptor_nodes.len());
        let Some(t) = self.takeover.as_mut() else { return };
        if round != t.round || !t.promises.insert(from) {
            return;
        }
        for (i, vr, b) in votes {
            match t.votes.get(&i) {
                Some((prev, _)) if *prev >= vr => {}
                _ => {
                    t.votes.insert(i, (vr, b));
                }
            }
        }
        t.db_min = t.db_min.min(decided_below);
        t.db_max = t.db_max.max(decided_below);
        if t.promises.len() >= quorum_n {
            self.become_coordinator(ctx);
        }
    }

    /// Promise quorum reached: reconstruct the instance allocation from
    /// the revealed votes, lay out a new ring, and resume proposing
    /// under the new epoch.
    ///
    /// Safety of the window repair: a U-Ring decision requires votes
    /// from *every* acceptor of its ring layout (≥ a quorum of the
    /// deployment's acceptors), and the promise quorum intersects any
    /// such set — so every instance decided above a promiser's delivery
    /// watermark has a revealed vote, and the highest-round revealed
    /// value is the (only possibly) chosen one. An instance above every
    /// promiser's watermark with no revealed vote is provably undecided
    /// and is closed with an empty batch. Revealed gaps *below* some
    /// promiser's watermark were decided and delivered somewhere while
    /// this quorum's votes no longer cover them (checkpoint GC); they
    /// are left to the recovery catch-up path rather than guessed at.
    fn become_coordinator(&mut self, ctx: &mut Ctx) {
        let t = self.takeover.take().expect("quorum implies a takeover");
        self.round = t.round;
        // New layout: me first (the coordinator is the first acceptor),
        // then the other promising acceptors, then the remaining current
        // members. Live processes spliced out here rejoin via JoinReq.
        let mut ring = vec![self.me];
        for &n in &self.all_nodes {
            if n != self.me && t.promises.contains(&n) {
                ring.push(n);
            }
        }
        let old_ring = self.cfg.ring.clone();
        for &n in &old_ring {
            if !ring.contains(&n) && !self.acceptor_nodes.contains(&n) {
                ring.push(n);
            }
        }
        let start = if t.db_min == InstanceId(u64::MAX) {
            self.decided_below_here()
        } else {
            t.db_min.min(self.decided_below_here())
        };
        let mut next = start.max(t.db_max);
        if let Some((&hi, _)) = t.votes.iter().next_back() {
            next = next.max(hi.next());
        }
        let now = ctx.now();
        let mut c = UCoord {
            pending: VecDeque::new(),
            pending_bytes: 0,
            next_instance: next,
            outstanding: BTreeSet::new(),
            outstanding_batches: BTreeMap::new(),
            last_progress: now,
            repair: None,
        };
        let mut reprops: Vec<(InstanceId, Batch)> = Vec::new();
        let mut i = start;
        while i < next {
            let batch = match t.votes.get(&i) {
                Some((_, b)) => b.clone(),
                None if i >= t.db_max => BatchData::empty(),
                None => {
                    i = i.next();
                    continue; // decided+delivered elsewhere; catch-up heals
                }
            };
            c.outstanding.insert(i);
            c.outstanding_batches.insert(i, (batch.clone(), now));
            reprops.push((i, batch));
            i = i.next();
        }
        self.coord = Some(c);
        self.adopt_layout(&ring);
        self.mark_epoch();
        ctx.counter_add("rp.became_coord", 1);
        self.broadcast_ring(ctx);
        for (i, b) in reprops {
            ctx.counter_add("rp.epoch_reproposals", 1);
            self.send_2ab(i, b, ctx);
        }
        ctx.set_timer(self.cfg.batch_timeout, TimerToken(T_BATCH));
        ctx.set_timer(self.suspicion_timeout() / 2, TimerToken(T_HEARTBEAT));
    }

    /// Drops the coordinator role (a higher round exists elsewhere).
    /// Pending and outstanding values are abandoned: proposers track
    /// undelivered values and re-send them to the new coordinator.
    fn depose(&mut self, ctx: &mut Ctx) {
        if self.coord.take().is_some() {
            ctx.counter_add("rp.deposed", 1);
            if self.failover_on() && self.acceptor.is_some() {
                ctx.set_timer(self.suspicion_timeout(), TimerToken(T_SUSPECT));
            }
        }
    }

    fn on_new_ring(&mut self, round: Round, coord: NodeId, ring: Vec<NodeId>, ctx: &mut Ctx) {
        if !self.failover_on() || round < self.round || coord == self.me {
            return;
        }
        self.round = round;
        self.persist_promise(round);
        self.takeover = None;
        self.depose(ctx);
        self.adopt_layout(&ring);
        self.mark_epoch();
        self.last_coord_activity = ctx.now();
        if self.excluded {
            ctx.tcp_send(coord, UMsg::JoinReq { from: self.me }, self.cfg.ctl_bytes);
        }
    }

    fn on_heartbeat(&mut self, round: Round, coord: NodeId, ring: Vec<NodeId>, ctx: &mut Ctx) {
        if !self.failover_on() || round < self.round || coord == self.me {
            return;
        }
        if round > self.round || self.cfg.ring != ring {
            // A respawned process still holds its pre-crash layout under
            // its restored (promised) round: resync from the heartbeat.
            self.on_new_ring(round, coord, ring, ctx);
            return;
        }
        self.last_coord_activity = ctx.now();
        if self.excluded {
            ctx.tcp_send(coord, UMsg::JoinReq { from: self.me }, self.cfg.ctl_bytes);
        }
        self.revive_catchup_chain(ctx);
    }

    /// A process brought back up with its state preserved lost every
    /// timer that expired while it was down, the periodic catch-up tick
    /// included — and on a failover-enabled ring the others kept
    /// deciding around it, so gap detection is exactly what it needs.
    /// Heartbeats are the one signal such a process is guaranteed to
    /// receive: re-arm the chain when its last tick is implausibly old
    /// (a live chain ticks every `CATCHUP_RETRY`).
    fn revive_catchup_chain(&mut self, ctx: &mut Ctx) {
        if self.learner.is_none() {
            return;
        }
        let Some(rec) = self.rec.as_mut() else { return };
        if ctx.now().saturating_since(rec.last_tick) > CATCHUP_RETRY * 4 {
            rec.last_tick = ctx.now();
            ctx.set_timer(CATCHUP_RETRY, TimerToken(T_CATCHUP));
        }
    }

    /// T_HEARTBEAT tick (coordinator only): keep-alives to the full
    /// membership, plus the ring-liveness check.
    fn heartbeat_tick(&mut self, ctx: &mut Ctx) {
        if !self.failover_on() || self.coord.is_none() {
            return; // deposed: the chain dies
        }
        let msg =
            UMsg::Heartbeat { round: self.round, coord: self.me, ring: self.cfg.ring.clone() };
        for &n in &self.all_nodes.clone() {
            if n != self.me {
                ctx.tcp_send(n, msg.clone(), self.cfg.ctl_bytes);
            }
        }
        self.ring_repair_check(ctx);
        ctx.set_timer(self.suspicion_timeout() / 2, TimerToken(T_HEARTBEAT));
    }

    /// Coordinator-side ring liveness: while instances are outstanding,
    /// decisions should keep circulating back. If none arrive for a
    /// full suspicion timeout, probe every member and splice out the
    /// silent ones (Fig. 7.5's fix: throughput resumes after one probe
    /// round instead of staying down for the whole outage).
    fn ring_repair_check(&mut self, ctx: &mut Ctx) {
        let timeout = self.suspicion_timeout();
        let now = ctx.now();
        enum Action {
            Nothing,
            Probe,
            Reform,
        }
        let action = {
            let Some(c) = self.coord.as_mut() else { return };
            if let Some(r) = c.repair.as_ref() {
                if now.saturating_since(r.started) >= timeout / 2 {
                    Action::Reform
                } else {
                    Action::Nothing
                }
            } else if c.outstanding.is_empty() {
                c.last_progress = now;
                Action::Nothing
            } else if now.saturating_since(c.last_progress) > timeout {
                Action::Probe
            } else {
                Action::Nothing
            }
        };
        match action {
            Action::Nothing => {}
            Action::Probe => self.start_ring_probe(ctx),
            Action::Reform => self.finish_ring_repair(ctx),
        }
    }

    fn start_ring_probe(&mut self, ctx: &mut Ctx) {
        let mut responders = BTreeSet::new();
        responders.insert(self.me);
        if let Some(c) = self.coord.as_mut() {
            c.repair = Some(URepair { responders, started: ctx.now() });
        }
        ctx.counter_add("rp.ring_probe", 1);
        for &n in &self.all_nodes.clone() {
            if n != self.me {
                ctx.tcp_send(n, UMsg::Ping { from: self.me }, self.cfg.ctl_bytes);
            }
        }
    }

    fn finish_ring_repair(&mut self, ctx: &mut Ctx) {
        let responders = {
            let Some(c) = self.coord.as_mut() else { return };
            let Some(r) = c.repair.take() else { return };
            c.last_progress = ctx.now();
            r.responders
        };
        // Keep responding members (acceptors contiguous first); silent
        // ones are spliced out and rejoin via JoinReq once they recover.
        let mut ring = vec![self.me];
        for &n in &self.all_nodes.clone() {
            if n != self.me && responders.contains(&n) && self.acceptor_nodes.contains(&n) {
                ring.push(n);
            }
        }
        let live_acceptors = ring.len();
        for &n in &self.all_nodes.clone() {
            if n != self.me && responders.contains(&n) && !self.acceptor_nodes.contains(&n) {
                ring.push(n);
            }
        }
        if live_acceptors < quorum(self.acceptor_nodes.len()) {
            // Too few live acceptors to decide anything: stay put and
            // keep probing (no layout can make progress without a
            // quorum anyway).
            ctx.counter_add("rp.repair_short", 1);
            return;
        }
        if ring == self.cfg.ring {
            return; // everyone answered: the stall is load, not a crash
        }
        self.reform_to(ring, ctx);
    }

    /// Splices the ring to `ring` under a bumped round (layout is a
    /// function of the round, so stale-layout traffic fails the fence)
    /// and re-drives every outstanding instance through the new layout.
    fn reform_to(&mut self, ring: Vec<NodeId>, ctx: &mut Ctx) {
        let round = self.round.next_for(self.me.0 as u32);
        self.round = round;
        self.persist_promise(round);
        self.adopt_layout(&ring);
        self.mark_epoch();
        ctx.counter_add("rp.ring_repair", 1);
        self.broadcast_ring(ctx);
        let now = ctx.now();
        let resend: Vec<(InstanceId, Batch)> = self
            .coord
            .as_mut()
            .map(|c| {
                c.outstanding_batches
                    .iter_mut()
                    .map(|(&i, (b, sent))| {
                        *sent = now;
                        (i, b.clone())
                    })
                    .collect()
            })
            .unwrap_or_default();
        for (i, b) in resend {
            self.send_2ab(i, b, ctx);
        }
    }

    /// A process outside the current layout asks to be spliced back in
    /// (it recovered, or was wrongly suspected). Acceptors go back into
    /// the acceptor segment; others are appended.
    fn on_join_req(&mut self, from: NodeId, ctx: &mut Ctx) {
        if !self.failover_on() || self.coord.is_none() {
            return;
        }
        if self.cfg.ring.contains(&from) || !self.all_nodes.contains(&from) {
            return;
        }
        let mut ring = self.cfg.ring.clone();
        if self.acceptor_nodes.contains(&from) {
            ring.insert(self.cfg.last_acceptor_pos() + 1, from);
        } else {
            ring.push(from);
        }
        ctx.counter_add("rp.joins", 1);
        self.reform_to(ring, ctx);
    }
}

impl Actor for URingProcess {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.last_coord_activity = ctx.now();
        if self.coord.is_some() {
            ctx.set_timer(self.cfg.batch_timeout, TimerToken(T_BATCH));
            if self.failover_on() {
                ctx.set_timer(self.suspicion_timeout() / 2, TimerToken(T_HEARTBEAT));
            }
        } else if self.failover_on() && self.acceptor.is_some() {
            ctx.set_timer(self.suspicion_timeout(), TimerToken(T_SUSPECT));
        }
        if self.prop.is_some() {
            ctx.set_timer(Dur::ZERO, TimerToken(T_PACE));
        }
        if self.rec.is_none() && self.failover_on() {
            ctx.set_timer(REPROP_INTERVAL, TimerToken(T_REPROP));
        }
        if let Some(rec) = self.rec.as_mut() {
            ctx.set_timer(REPROP_INTERVAL, TimerToken(T_REPROP));
            if self.learner.is_some() {
                // Persistent tick: drives catch-up retries while
                // recovering and re-enters catch-up if a delivery gap
                // gets stuck later.
                ctx.set_timer(CATCHUP_RETRY, TimerToken(T_CATCHUP));
            }
            if rec.catching_up {
                rec.catchup_started = ctx.now();
                let next = self.learner.as_ref().map(|l| l.next_deliver).unwrap_or(InstanceId(0));
                let peer = rec.peer;
                ctx.counter_add("rec.restarts", 1);
                ctx.tcp_send(peer, UMsg::CatchupReq { from: self.me, next }, self.cfg.ctl_bytes);
            }
        }
    }

    // Default `on_batch` for same-instant runs: it already loops
    // `on_message` with static dispatch (the engine pays the actor
    // indirection once per run either way), and nothing here can be
    // hoisted per burst without reordering ring traffic — delivery,
    // checkpointing, and catch-up all happen inline, per message.
    fn on_message(&mut self, env: &Envelope, ctx: &mut Ctx) {
        let Some(msg) = env.payload.downcast_ref::<UMsg>() else { return };
        match msg {
            UMsg::Forward(v) => {
                let v = *v;
                if self.excluded {
                    // No live successor; the origin proposer re-sends.
                    return;
                }
                if self.coord.is_some() {
                    self.enqueue(v, ctx);
                } else {
                    ctx.tcp_send(self.successor(), UMsg::Forward(v), v.bytes);
                }
            }
            UMsg::Phase2ab { instance, round, batch } => {
                let (instance, round) = (*instance, *round);
                let batch = batch.clone();
                self.on_phase2ab(instance, round, batch, ctx);
            }
            UMsg::Decision { instance, batch, id_hops_left, round } => {
                let (instance, ih, round) = (*instance, *id_hops_left, *round);
                let batch = batch.clone();
                self.on_decision(instance, batch, ih, round, ctx);
            }
            UMsg::Phase1a { round, from } => {
                let (round, from) = (*round, *from);
                self.on_phase1a(round, from, ctx);
            }
            UMsg::Phase1b { round, from, votes, decided_below } => {
                let (round, from, decided_below) = (*round, *from, *decided_below);
                let votes = votes.clone();
                self.on_phase1b(round, from, votes, decided_below, ctx);
            }
            UMsg::NewRing { round, coord, ring } => {
                let (round, coord) = (*round, *coord);
                let ring = ring.clone();
                self.on_new_ring(round, coord, ring, ctx);
            }
            UMsg::Heartbeat { round, coord, ring } => {
                let (round, coord) = (*round, *coord);
                let ring = ring.clone();
                self.on_heartbeat(round, coord, ring, ctx);
            }
            UMsg::Ping { from } => {
                let from = *from;
                ctx.tcp_send(from, UMsg::Pong { from: self.me }, self.cfg.ctl_bytes);
            }
            UMsg::Pong { from } => {
                if let Some(r) = self.coord.as_mut().and_then(|c| c.repair.as_mut()) {
                    r.responders.insert(*from);
                }
            }
            UMsg::JoinReq { from } => {
                let from = *from;
                self.on_join_req(from, ctx);
            }
            UMsg::CatchupReq { from, next } => {
                let (from, next) = (*from, *next);
                self.serve_catchup(from, next, ctx);
            }
            UMsg::CatchupRep { snap, batches, upto } => {
                let (snap, batches, upto) = (snap.clone(), batches.clone(), *upto);
                self.on_catchup_rep(snap, batches, upto, ctx);
            }
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx) {
        match token.0 & KIND_MASK {
            T_BATCH => {
                if self.coord.is_some() {
                    self.try_flush(ctx, true);
                    ctx.set_timer(self.cfg.batch_timeout, TimerToken(T_BATCH));
                }
            }
            T_PACE => self.pace(ctx),
            T_WAL => {
                let payload = token.0 & !KIND_MASK;
                let durable = match self.rec.as_mut() {
                    Some(rec) => rec.wal.on_token(payload, ctx),
                    None => Vec::new(),
                };
                for (instance, round, batch) in durable {
                    self.vote_and_forward(instance, round, batch, ctx);
                }
            }
            T_CKPT => {
                let payload = token.0 & !KIND_MASK;
                if let Some(rec) = self.rec.as_mut() {
                    if let Some(w) = rec.ckpt.as_mut().and_then(|c| c.on_token(payload)) {
                        // The retention slack keeps a suffix below the
                        // watermark so peers with short outages avoid a
                        // full state transfer.
                        let keep = InstanceId(w.0.saturating_sub(rec.retention));
                        rec.cache.trim_below(keep);
                        if let Some(a) = self.acceptor.as_mut() {
                            a.gc_below(w);
                        }
                        ctx.counter_add("rec.checkpoints", 1);
                    }
                }
            }
            T_CATCHUP => {
                let Some(l) = self.learner.as_ref() else { return };
                let next = l.next_deliver;
                // Decisions buffered above an undelivered gap mean the
                // live flow skipped instances this learner is missing.
                let stuck = l.ready.keys().next().is_some_and(|&m| m > next);
                let Some(rec) = self.rec.as_mut() else { return };
                rec.last_tick = ctx.now();
                let peer = rec.peer;
                if rec.catching_up {
                    ctx.tcp_send(
                        peer,
                        UMsg::CatchupReq { from: self.me, next },
                        self.cfg.ctl_bytes,
                    );
                } else if stuck {
                    // Re-enter catch-up if the gap outlived a full tick
                    // (re-proposal normally closes small gaps faster).
                    if rec.last_gap == Some(next) {
                        rec.catching_up = true;
                        rec.catchup_started = ctx.now();
                        rec.last_gap = None;
                        ctx.counter_add("rec.gap_catchups", 1);
                        ctx.tcp_send(
                            peer,
                            UMsg::CatchupReq { from: self.me, next },
                            self.cfg.ctl_bytes,
                        );
                    } else {
                        rec.last_gap = Some(next);
                    }
                } else {
                    rec.last_gap = None;
                }
                ctx.set_timer(CATCHUP_RETRY, TimerToken(T_CATCHUP));
            }
            T_REPROP => self.repropose_check(ctx),
            T_SUSPECT => self.suspect_check(ctx),
            T_HEARTBEAT => self.heartbeat_tick(ctx),
            T_DISK => {
                let payload = token.0 & !KIND_MASK;
                if payload == u64::MAX >> 8 {
                    return;
                }
                let instance = InstanceId(payload);
                if let Some((round, batch)) = self.disk_pending.remove(&instance) {
                    self.vote_and_forward(instance, round, batch, ctx);
                }
            }
            _ => {}
        }
    }
}
