//! Deployment helpers: stand up a complete Ring Paxos ensemble on a
//! simulated cluster in one call. Experiments and tests share these.

use abcast::{shared_log, Pacer, SharedLog};
use recovery::{stable, LogMode, RecoveredApp, StableHandle};
use simnet::prelude::*;

use crate::config::{MRingConfig, URingConfig};
use crate::mring::{MRecovery, MRingProcess};
use crate::uring::{URecovery, URingProcess};
use crate::value::Batch;

/// Placeholder actor installed while node ids are being allocated.
struct Idle;
impl Actor for Idle {
    fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
}

/// Options for [`deploy_mring`].
#[derive(Clone, Debug)]
pub struct MRingOptions {
    /// Acceptors in the ring, coordinator included (the paper's `f + 1`).
    pub ring_size: usize,
    /// Spare acceptors outside the ring (for failover experiments).
    pub spares: usize,
    /// Dedicated learner nodes ("receivers" in the paper's figures).
    pub n_learners: usize,
    /// Proposer nodes. Each is also a learner, as the paper notes a
    /// proposer must be to observe its own decisions.
    pub n_proposers: usize,
    /// Offered load per proposer, bits per second.
    pub proposer_rate_bps: u64,
    /// Application message size in bytes.
    pub msg_bytes: u32,
    /// Messages per proposer wakeup (burstiness).
    pub burst: u32,
    /// Stop offering load at this time (None = run forever).
    pub proposer_stop: Option<Time>,
}

impl Default for MRingOptions {
    fn default() -> Self {
        MRingOptions {
            ring_size: 3,
            spares: 0,
            n_learners: 2,
            n_proposers: 2,
            proposer_rate_bps: 100_000_000,
            msg_bytes: 8192,
            burst: 1,
            proposer_stop: None,
        }
    }
}

/// A deployed M-Ring Paxos ensemble.
pub struct MRingDeployment {
    /// The shared protocol configuration.
    pub cfg: MRingConfig,
    /// Ring acceptors (last is the coordinator).
    pub ring: Vec<NodeId>,
    /// Spare acceptors.
    pub spares: Vec<NodeId>,
    /// Dedicated learner nodes.
    pub learners: Vec<NodeId>,
    /// Proposer (and learner) nodes.
    pub proposers: Vec<NodeId>,
    /// All learner nodes in `cfg.learners` order (dedicated + proposers).
    pub all_learners: Vec<NodeId>,
    /// The multicast group.
    pub group: GroupId,
    /// Delivery log indexed like `all_learners`.
    pub log: SharedLog,
}

impl MRingDeployment {
    /// The coordinator node.
    pub fn coordinator(&self) -> NodeId {
        self.cfg.coordinator()
    }
}

/// Deploys M-Ring Paxos on `sim`. `configure` can adjust the
/// [`MRingConfig`] (packet size, storage mode, flow control…) before the
/// processes are instantiated.
pub fn deploy_mring(
    sim: &mut Sim,
    opts: &MRingOptions,
    configure: impl FnOnce(&mut MRingConfig),
) -> MRingDeployment {
    let ring: Vec<NodeId> = (0..opts.ring_size).map(|_| sim.add_node(Box::new(Idle))).collect();
    let spares: Vec<NodeId> = (0..opts.spares).map(|_| sim.add_node(Box::new(Idle))).collect();
    let learners: Vec<NodeId> =
        (0..opts.n_learners).map(|_| sim.add_node(Box::new(Idle))).collect();
    let proposers: Vec<NodeId> =
        (0..opts.n_proposers).map(|_| sim.add_node(Box::new(Idle))).collect();
    let group = sim.add_group();

    let mut all_learners = learners.clone();
    all_learners.extend(&proposers);

    let mut cfg = MRingConfig::new(ring.clone(), all_learners.clone(), group);
    cfg.spares = spares.clone();
    configure(&mut cfg);

    for &n in ring.iter().chain(&spares).chain(&all_learners) {
        sim.subscribe(n, group);
    }

    let log = shared_log(all_learners.len());
    for &n in ring.iter().chain(&spares) {
        sim.replace_actor(n, Box::new(MRingProcess::new(cfg.clone(), n, None, None)));
    }
    for &n in &learners {
        sim.replace_actor(n, Box::new(MRingProcess::new(cfg.clone(), n, None, Some(log.clone()))));
    }
    for &n in &proposers {
        let mut pacer = Pacer::new(opts.proposer_rate_bps, opts.msg_bytes, opts.burst);
        if let Some(stop) = opts.proposer_stop {
            pacer.stop_at(stop);
        }
        sim.replace_actor(
            n,
            Box::new(MRingProcess::new(cfg.clone(), n, Some(pacer), Some(log.clone()))),
        );
    }

    MRingDeployment { cfg, ring, spares, learners, proposers, all_learners, group, log }
}

/// A recovery-enabled M-Ring deployment: the ensemble plus each node's
/// stable store, which outlives actor replacements so that
/// [`respawn_mring`] can install a fresh process over it.
pub struct RecoverableMRing {
    /// The underlying deployment.
    pub d: MRingDeployment,
    /// Learner checkpoint interval the deployment was built with.
    pub checkpoint_interval: u64,
    /// Stable stores, one per node the deployment created.
    stores: Vec<(NodeId, StableHandle<Batch>)>,
}

impl RecoverableMRing {
    /// The stable store of `node`.
    pub fn store_of(&self, node: NodeId) -> StableHandle<Batch> {
        self.stores
            .iter()
            .find(|(n, _)| *n == node)
            .map(|(_, s)| s.clone())
            .expect("node belongs to this deployment")
    }
}

/// Deploys M-Ring Paxos with the recovery subsystem on every process.
/// Vote durability requires `StorageMode::SyncDisk`, which this helper
/// sets; `configure` runs after that and may adjust everything else.
/// `mk_app` supplies each *learner* node's replicated-service hook.
pub fn deploy_mring_recoverable(
    sim: &mut Sim,
    opts: &MRingOptions,
    checkpoint_interval: u64,
    configure: impl FnOnce(&mut MRingConfig),
    mut mk_app: impl FnMut(NodeId) -> Option<Box<dyn RecoveredApp>>,
) -> RecoverableMRing {
    let d = deploy_mring(sim, opts, |cfg| {
        cfg.storage = crate::config::StorageMode::SyncDisk;
        configure(cfg);
    });
    let mut stores: Vec<(NodeId, StableHandle<Batch>)> = Vec::new();
    let store_for = |n: NodeId, stores: &mut Vec<(NodeId, StableHandle<Batch>)>| {
        let s: StableHandle<Batch> = stable();
        stores.push((n, s.clone()));
        s
    };
    for &n in d.ring.iter().chain(&d.spares) {
        let store = store_for(n, &mut stores);
        let actor = MRingProcess::new(d.cfg.clone(), n, None, None).with_recovery(MRecovery {
            store,
            checkpoint_interval,
            app: None,
            resumed: false,
        });
        sim.replace_actor(n, Box::new(actor));
    }
    for &n in &d.learners {
        let store = store_for(n, &mut stores);
        let actor = MRingProcess::new(d.cfg.clone(), n, None, Some(d.log.clone())).with_recovery(
            MRecovery { store, checkpoint_interval, app: mk_app(n), resumed: false },
        );
        sim.replace_actor(n, Box::new(actor));
    }
    for &n in &d.proposers {
        let store = store_for(n, &mut stores);
        let mut pacer = Pacer::new(opts.proposer_rate_bps, opts.msg_bytes, opts.burst);
        if let Some(stop) = opts.proposer_stop {
            pacer.stop_at(stop);
        }
        let actor =
            MRingProcess::new(d.cfg.clone(), n, Some(pacer), Some(d.log.clone())).with_recovery(
                MRecovery { store, checkpoint_interval, app: mk_app(n), resumed: false },
            );
        sim.replace_actor(n, Box::new(actor));
    }
    RecoverableMRing { d, checkpoint_interval, stores }
}

/// Respawns a fresh recovery-enabled M-Ring process on `node` over its
/// stable store (marks the node up first): an acceptor replays its
/// durable votes, a learner restores its checkpoint and catches the
/// decided suffix up from its preferential acceptor over TCP. The
/// proposer role is not resumed.
pub fn respawn_mring(
    sim: &mut Sim,
    rm: &RecoverableMRing,
    node: NodeId,
    app: Option<Box<dyn RecoveredApp>>,
) {
    sim.set_node_up(node, true);
    let log = rm.d.cfg.learners.contains(&node).then(|| rm.d.log.clone());
    let actor = MRingProcess::new(rm.d.cfg.clone(), node, None, log).with_recovery(MRecovery {
        store: rm.store_of(node),
        checkpoint_interval: rm.checkpoint_interval,
        app,
        resumed: true,
    });
    sim.replace_actor(node, Box::new(actor));
}

/// Options for [`deploy_uring`].
#[derive(Clone, Debug)]
pub struct URingOptions {
    /// Total processes on the ring.
    pub ring_len: usize,
    /// How many (from position 0) are acceptors; position 0 coordinates.
    pub n_acceptors: usize,
    /// Ring positions that propose (the paper has every process propose
    /// for peak throughput).
    pub proposer_positions: Vec<usize>,
    /// Offered load per proposer, bits per second.
    pub proposer_rate_bps: u64,
    /// Application message size in bytes.
    pub msg_bytes: u32,
    /// Messages per wakeup.
    pub burst: u32,
    /// Stop offering load at this time (None = run forever).
    pub proposer_stop: Option<Time>,
}

impl Default for URingOptions {
    fn default() -> Self {
        URingOptions {
            ring_len: 5,
            n_acceptors: 3,
            proposer_positions: vec![0, 1, 2, 3, 4],
            proposer_rate_bps: 100_000_000,
            msg_bytes: 32 * 1024,
            burst: 1,
            proposer_stop: None,
        }
    }
}

/// A deployed U-Ring Paxos ensemble.
pub struct URingDeployment {
    /// The shared protocol configuration.
    pub cfg: URingConfig,
    /// Processes in ring order (position 0 is the coordinator).
    pub ring: Vec<NodeId>,
    /// Delivery log indexed by ring position (all processes learn).
    pub log: SharedLog,
}

/// Deploys U-Ring Paxos on `sim`.
pub fn deploy_uring(
    sim: &mut Sim,
    opts: &URingOptions,
    configure: impl FnOnce(&mut URingConfig),
) -> URingDeployment {
    let ring: Vec<NodeId> = (0..opts.ring_len).map(|_| sim.add_node(Box::new(Idle))).collect();
    let mut cfg = URingConfig::new(ring.clone(), opts.n_acceptors);
    configure(&mut cfg);
    let log = shared_log(cfg.learner_positions.len());
    for pos in 0..opts.ring_len {
        let pacer = opts.proposer_positions.contains(&pos).then(|| {
            let mut p = Pacer::new(opts.proposer_rate_bps, opts.msg_bytes, opts.burst);
            if let Some(stop) = opts.proposer_stop {
                p.stop_at(stop);
            }
            p
        });
        let actor = URingProcess::new(cfg.clone(), pos, pacer, Some(log.clone()));
        sim.replace_actor(ring[pos], Box::new(actor));
    }
    URingDeployment { cfg, ring, log }
}

/// Recovery tuning for [`deploy_uring_recoverable`].
#[derive(Clone, Copy, Debug)]
pub struct URingRecoveryOptions {
    /// Acceptor vote-log commit mode.
    pub wal_mode: LogMode,
    /// Learner checkpoint interval, in delivered instances (0 = never).
    pub checkpoint_interval: u64,
    /// Decided instances each process retains below its checkpoint
    /// watermark for serving peers' catch-up without a state transfer.
    pub catchup_retention: u64,
}

impl Default for URingRecoveryOptions {
    fn default() -> Self {
        URingRecoveryOptions {
            wal_mode: LogMode::Sync,
            checkpoint_interval: 256,
            catchup_retention: 512,
        }
    }
}

/// A recovery-enabled U-Ring deployment: the ensemble plus each node's
/// stable store, which outlives actor replacements so that
/// [`respawn_uring`] can install a fresh process over it.
pub struct RecoverableURing {
    /// The underlying deployment.
    pub d: URingDeployment,
    /// Recovery options the deployment was built with.
    pub rec: URingRecoveryOptions,
    /// Per-position stable stores (the nodes' disks).
    pub stores: Vec<StableHandle<Batch>>,
}

/// Deploys U-Ring Paxos with the recovery subsystem on every process.
/// `mk_app` supplies each ring position's replicated-service hook
/// (`None` for a stateless learner whose checkpoints carry only
/// metadata).
pub fn deploy_uring_recoverable(
    sim: &mut Sim,
    opts: &URingOptions,
    rec: URingRecoveryOptions,
    configure: impl FnOnce(&mut URingConfig),
    mut mk_app: impl FnMut(usize) -> Option<Box<dyn RecoveredApp>>,
) -> RecoverableURing {
    let d = deploy_uring(sim, opts, configure);
    let stores: Vec<StableHandle<Batch>> = (0..opts.ring_len).map(|_| stable()).collect();
    for pos in 0..opts.ring_len {
        let pacer = opts.proposer_positions.contains(&pos).then(|| {
            let mut p = Pacer::new(opts.proposer_rate_bps, opts.msg_bytes, opts.burst);
            if let Some(stop) = opts.proposer_stop {
                p.stop_at(stop);
            }
            p
        });
        let actor = URingProcess::new(d.cfg.clone(), pos, pacer, Some(d.log.clone()))
            .with_recovery(URecovery {
                store: stores[pos].clone(),
                wal_mode: rec.wal_mode,
                checkpoint_interval: rec.checkpoint_interval,
                app: mk_app(pos),
                peer: None,
                catchup_retention: rec.catchup_retention,
                resumed: false,
            });
        sim.replace_actor(d.ring[pos], Box::new(actor));
    }
    RecoverableURing { d, rec, stores }
}

/// Respawns a fresh recovery-enabled process at ring position `pos`
/// over its stable store (marks the node up first): the process replays
/// its durable acceptor votes, restores the learner checkpoint, and
/// catches the decided suffix up from a peer. The proposer role is not
/// resumed (see the `uring` module docs).
///
/// Position 0 — the original coordinator — may be respawned only on a
/// failover-enabled ring (`cfg.suspicion_timeout` set): its instance
/// allocation is not logged write-ahead, so the fresh incarnation comes
/// back demoted and re-acquires leadership (if at all) through an epoch
/// takeover whose promise quorum reconstructs the allocation. Without
/// failover, `URingProcess::with_recovery` panics for that position.
pub fn respawn_uring(
    sim: &mut Sim,
    ru: &RecoverableURing,
    pos: usize,
    app: Option<Box<dyn RecoveredApp>>,
) {
    sim.set_node_up(ru.d.ring[pos], true);
    let actor = URingProcess::new(ru.d.cfg.clone(), pos, None, Some(ru.d.log.clone()))
        .with_recovery(URecovery {
            store: ru.stores[pos].clone(),
            wal_mode: ru.rec.wal_mode,
            checkpoint_interval: ru.rec.checkpoint_interval,
            app,
            peer: None,
            catchup_retention: ru.rec.catchup_retention,
            resumed: true,
        });
    sim.replace_actor(ru.d.ring[pos], Box::new(actor));
}
