//! Deployment helpers: stand up a complete Ring Paxos ensemble on a
//! simulated cluster in one call. Experiments and tests share these.

use abcast::{shared_log, Pacer, SharedLog};
use simnet::prelude::*;

use crate::config::{MRingConfig, URingConfig};
use crate::mring::MRingProcess;
use crate::uring::URingProcess;

/// Placeholder actor installed while node ids are being allocated.
struct Idle;
impl Actor for Idle {
    fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
}

/// Options for [`deploy_mring`].
#[derive(Clone, Debug)]
pub struct MRingOptions {
    /// Acceptors in the ring, coordinator included (the paper's `f + 1`).
    pub ring_size: usize,
    /// Spare acceptors outside the ring (for failover experiments).
    pub spares: usize,
    /// Dedicated learner nodes ("receivers" in the paper's figures).
    pub n_learners: usize,
    /// Proposer nodes. Each is also a learner, as the paper notes a
    /// proposer must be to observe its own decisions.
    pub n_proposers: usize,
    /// Offered load per proposer, bits per second.
    pub proposer_rate_bps: u64,
    /// Application message size in bytes.
    pub msg_bytes: u32,
    /// Messages per proposer wakeup (burstiness).
    pub burst: u32,
    /// Stop offering load at this time (None = run forever).
    pub proposer_stop: Option<Time>,
}

impl Default for MRingOptions {
    fn default() -> Self {
        MRingOptions {
            ring_size: 3,
            spares: 0,
            n_learners: 2,
            n_proposers: 2,
            proposer_rate_bps: 100_000_000,
            msg_bytes: 8192,
            burst: 1,
            proposer_stop: None,
        }
    }
}

/// A deployed M-Ring Paxos ensemble.
pub struct MRingDeployment {
    /// The shared protocol configuration.
    pub cfg: MRingConfig,
    /// Ring acceptors (last is the coordinator).
    pub ring: Vec<NodeId>,
    /// Spare acceptors.
    pub spares: Vec<NodeId>,
    /// Dedicated learner nodes.
    pub learners: Vec<NodeId>,
    /// Proposer (and learner) nodes.
    pub proposers: Vec<NodeId>,
    /// All learner nodes in `cfg.learners` order (dedicated + proposers).
    pub all_learners: Vec<NodeId>,
    /// The multicast group.
    pub group: GroupId,
    /// Delivery log indexed like `all_learners`.
    pub log: SharedLog,
}

impl MRingDeployment {
    /// The coordinator node.
    pub fn coordinator(&self) -> NodeId {
        self.cfg.coordinator()
    }
}

/// Deploys M-Ring Paxos on `sim`. `configure` can adjust the
/// [`MRingConfig`] (packet size, storage mode, flow control…) before the
/// processes are instantiated.
pub fn deploy_mring(
    sim: &mut Sim,
    opts: &MRingOptions,
    configure: impl FnOnce(&mut MRingConfig),
) -> MRingDeployment {
    let ring: Vec<NodeId> = (0..opts.ring_size).map(|_| sim.add_node(Box::new(Idle))).collect();
    let spares: Vec<NodeId> = (0..opts.spares).map(|_| sim.add_node(Box::new(Idle))).collect();
    let learners: Vec<NodeId> =
        (0..opts.n_learners).map(|_| sim.add_node(Box::new(Idle))).collect();
    let proposers: Vec<NodeId> =
        (0..opts.n_proposers).map(|_| sim.add_node(Box::new(Idle))).collect();
    let group = sim.add_group();

    let mut all_learners = learners.clone();
    all_learners.extend(&proposers);

    let mut cfg = MRingConfig::new(ring.clone(), all_learners.clone(), group);
    cfg.spares = spares.clone();
    configure(&mut cfg);

    for &n in ring.iter().chain(&spares).chain(&all_learners) {
        sim.subscribe(n, group);
    }

    let log = shared_log(all_learners.len());
    for &n in ring.iter().chain(&spares) {
        sim.replace_actor(n, Box::new(MRingProcess::new(cfg.clone(), n, None, None)));
    }
    for &n in &learners {
        sim.replace_actor(n, Box::new(MRingProcess::new(cfg.clone(), n, None, Some(log.clone()))));
    }
    for &n in &proposers {
        let mut pacer = Pacer::new(opts.proposer_rate_bps, opts.msg_bytes, opts.burst);
        if let Some(stop) = opts.proposer_stop {
            pacer.stop_at(stop);
        }
        sim.replace_actor(
            n,
            Box::new(MRingProcess::new(cfg.clone(), n, Some(pacer), Some(log.clone()))),
        );
    }

    MRingDeployment { cfg, ring, spares, learners, proposers, all_learners, group, log }
}

/// Options for [`deploy_uring`].
#[derive(Clone, Debug)]
pub struct URingOptions {
    /// Total processes on the ring.
    pub ring_len: usize,
    /// How many (from position 0) are acceptors; position 0 coordinates.
    pub n_acceptors: usize,
    /// Ring positions that propose (the paper has every process propose
    /// for peak throughput).
    pub proposer_positions: Vec<usize>,
    /// Offered load per proposer, bits per second.
    pub proposer_rate_bps: u64,
    /// Application message size in bytes.
    pub msg_bytes: u32,
    /// Messages per wakeup.
    pub burst: u32,
    /// Stop offering load at this time (None = run forever).
    pub proposer_stop: Option<Time>,
}

impl Default for URingOptions {
    fn default() -> Self {
        URingOptions {
            ring_len: 5,
            n_acceptors: 3,
            proposer_positions: vec![0, 1, 2, 3, 4],
            proposer_rate_bps: 100_000_000,
            msg_bytes: 32 * 1024,
            burst: 1,
            proposer_stop: None,
        }
    }
}

/// A deployed U-Ring Paxos ensemble.
pub struct URingDeployment {
    /// The shared protocol configuration.
    pub cfg: URingConfig,
    /// Processes in ring order (position 0 is the coordinator).
    pub ring: Vec<NodeId>,
    /// Delivery log indexed by ring position (all processes learn).
    pub log: SharedLog,
}

/// Deploys U-Ring Paxos on `sim`.
pub fn deploy_uring(
    sim: &mut Sim,
    opts: &URingOptions,
    configure: impl FnOnce(&mut URingConfig),
) -> URingDeployment {
    let ring: Vec<NodeId> = (0..opts.ring_len).map(|_| sim.add_node(Box::new(Idle))).collect();
    let mut cfg = URingConfig::new(ring.clone(), opts.n_acceptors);
    configure(&mut cfg);
    let log = shared_log(cfg.learner_positions.len());
    for pos in 0..opts.ring_len {
        let pacer = opts.proposer_positions.contains(&pos).then(|| {
            let mut p = Pacer::new(opts.proposer_rate_bps, opts.msg_bytes, opts.burst);
            if let Some(stop) = opts.proposer_stop {
                p.stop_at(stop);
            }
            p
        });
        let actor = URingProcess::new(cfg.clone(), pos, pacer, Some(log.clone()));
        sim.replace_actor(ring[pos], Box::new(actor));
    }
    URingDeployment { cfg, ring, log }
}
