//! Deployment configuration for the Ring Paxos protocols.

use simnet::ids::{GroupId, NodeId};
use simnet::time::Dur;

/// How acceptors persist their votes (§3.3.5, §5.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StorageMode {
    /// Votes live in acceptor memory only; assumes a majority of acceptors
    /// never fails simultaneously. Network/CPU bound.
    #[default]
    InMemory,
    /// Acceptors write each vote to disk *before* forwarding their Phase 2B
    /// (ch. 3 §3.5.5). Disk bound, ~270 Mbps on the modelled SSD.
    SyncDisk,
    /// Acceptors write asynchronously and vote immediately, throttling when
    /// the disk falls too far behind (Recoverable Ring Paxos, ch. 5).
    AsyncDisk,
}

/// State partitioning over one M-Ring Paxos instance (ch. 4 §4.2.2):
/// the coordinator totally orders all commands but transfers each batch
/// only to the multicast groups of the partitions it accesses; decisions
/// travel on a dedicated decision group (no piggybacking). Acceptors
/// subscribe to every group; learners subscribe to their partition's
/// group plus the decision group.
#[derive(Clone, Debug)]
pub struct PartitionConfig {
    /// One multicast group per partition (index = partition number).
    pub groups: Vec<GroupId>,
    /// The decision group every process subscribes to.
    pub decision_group: GroupId,
    /// Partition mask of each learner, aligned with `MRingConfig::learners`.
    pub learner_masks: Vec<u32>,
}

/// Skip-instance generation for Multi-Ring Paxos (ch. 5 Algorithm 1):
/// every `delta`, the coordinator compares the consensus rate `mu` of its
/// ring against the global expected maximum `lambda`; a ring running
/// below `lambda` proposes enough skip instances (batched into a single
/// consensus execution) to keep the deterministic merge from stalling.
#[derive(Clone, Copy, Debug)]
pub struct SkipConfig {
    /// Expected maximum consensus rate of any ring, instances per second.
    pub lambda_per_sec: u64,
    /// Sampling interval.
    pub delta: Dur,
}

/// Flow-control tuning (§3.3.6).
#[derive(Clone, Copy, Debug)]
pub struct FlowConfig {
    /// Outstanding (proposed but undecided) instances the coordinator may
    /// keep open initially.
    pub initial_window: u32,
    /// Lower bound the window can shrink to under back-pressure.
    pub min_window: u32,
    /// Upper bound the window can grow back to.
    pub max_window: u32,
    /// A learner notifies the ring when this many decided-but-unprocessed
    /// instances accumulate in its buffer.
    pub learner_threshold: u32,
    /// How long without slow-down notifications before the coordinator
    /// starts growing its window again.
    pub recovery_quiet: Dur,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            initial_window: 64,
            min_window: 2,
            max_window: 256,
            learner_threshold: 512,
            recovery_quiet: Dur::millis(500),
        }
    }
}

/// Static description of one M-Ring Paxos deployment, shared by every
/// process in it.
#[derive(Clone, Debug)]
pub struct MRingConfig {
    /// Acceptors in ring order. The *last* entry is the coordinator
    /// (Algorithm 2 places the coordinator last in the ring).
    pub ring: Vec<NodeId>,
    /// Spare acceptors outside the ring (used on acceptor failure).
    pub spares: Vec<NodeId>,
    /// The ip-multicast group: ring acceptors and all learners subscribe.
    pub group: GroupId,
    /// Learner nodes (must be subscribed to `group`).
    pub learners: Vec<NodeId>,
    /// Target consensus packet size (the paper uses 8 KB).
    pub packet_bytes: u32,
    /// Flush a partial batch after this long.
    pub batch_timeout: Dur,
    /// Coordinator's buffer of pending (unproposed) values, in bytes.
    /// Values arriving beyond this are dropped (proposers retry) — the
    /// paper's 160 MB circular buffer (§3.5.2).
    pub pending_cap_bytes: u64,
    /// Acceptor persistence.
    pub storage: StorageMode,
    /// Disk write unit for Sync/Async storage (32 KB in §3.5.5).
    pub disk_unit: u32,
    /// Flow control parameters.
    pub flow: FlowConfig,
    /// Wire size of a Phase 2B / control message.
    pub ctl_bytes: u32,
    /// How often learners report their applied version for GC.
    pub gc_interval: Dur,
    /// Instances retained *behind* the f+1-applied watermark before
    /// acceptors discard them. The paper garbage-collects as soon as
    /// f+1 learners applied (§3.3.7) and points stragglers at a peer
    /// learner with "a sufficiently recent version"; this retention
    /// window plays that role — a learner that falls further behind
    /// than this needs a state transfer, which is out of scope.
    pub gc_retention: u64,
    /// Silence threshold after which ring members suspect the coordinator.
    pub suspicion_timeout: Dur,
    /// CPU the coordinator spends assembling one batch (buffer and
    /// bookkeeping overhead measured in the paper's prototype).
    pub batch_overhead: Dur,
    /// Extra CPU a learner spends processing one delivered batch (models
    /// application handling; the flow-control experiment raises it).
    pub learner_batch_cost: Dur,
    /// Skip-instance generation (Multi-Ring Paxos); `None` disables it.
    pub skip: Option<SkipConfig>,
    /// State partitioning (ch. 4); `None` means classic broadcast.
    pub partitions: Option<PartitionConfig>,
}

impl MRingConfig {
    /// A default configuration for the given ring/learners/group.
    pub fn new(ring: Vec<NodeId>, learners: Vec<NodeId>, group: GroupId) -> MRingConfig {
        MRingConfig {
            ring,
            spares: Vec::new(),
            group,
            learners,
            packet_bytes: 8192,
            batch_timeout: Dur::micros(200),
            pending_cap_bytes: 160 * 1024 * 1024,
            storage: StorageMode::InMemory,
            disk_unit: 32 * 1024,
            flow: FlowConfig::default(),
            ctl_bytes: 32,
            gc_interval: Dur::millis(100),
            gc_retention: 1024,
            suspicion_timeout: Dur::millis(200),
            batch_overhead: Dur::micros(19),
            learner_batch_cost: Dur::ZERO,
            skip: None,
            partitions: None,
        }
    }

    /// The mask of the learner at `index` (`ALL_PARTITIONS` when
    /// unpartitioned).
    pub fn learner_mask(&self, index: usize) -> u32 {
        self.partitions
            .as_ref()
            .and_then(|p| p.learner_masks.get(index).copied())
            .unwrap_or(crate::value::ALL_PARTITIONS)
    }

    /// The coordinator node (last in the ring).
    pub fn coordinator(&self) -> NodeId {
        *self.ring.last().expect("ring must be non-empty")
    }

    /// The first acceptor in the ring (successor of the coordinator's
    /// multicast).
    pub fn first_acceptor(&self) -> NodeId {
        self.ring[0]
    }

    /// The ring successor of `node`, if `node` is in the ring.
    pub fn successor(&self, node: NodeId) -> Option<NodeId> {
        let pos = self.ring.iter().position(|&n| n == node)?;
        Some(self.ring[(pos + 1) % self.ring.len()])
    }

    /// The preferential acceptor learners at `learner_index` contact for
    /// retransmissions and GC reports (spread round-robin, §3.3.4/§3.3.7).
    pub fn preferential_acceptor(&self, learner_index: usize) -> NodeId {
        self.ring[learner_index % self.ring.len()]
    }
}

/// Static description of one U-Ring Paxos deployment.
#[derive(Clone, Debug)]
pub struct URingConfig {
    /// Every process, in ring order. Position 0 is the coordinator (the
    /// paper places the coordinator as the first acceptor to cut latency).
    pub ring: Vec<NodeId>,
    /// Which ring positions are acceptors. The coordinator's position must
    /// be included; `f + 1` acceptors vote before the decision.
    pub acceptor_positions: Vec<usize>,
    /// Which ring positions are learners.
    pub learner_positions: Vec<usize>,
    /// Target consensus packet size (the paper uses 32 KB).
    pub packet_bytes: u32,
    /// Flush a partial batch after this long.
    pub batch_timeout: Dur,
    /// Per-proposer circular-buffer budget at each process (16 MB each,
    /// §3.5.2) — bounds outstanding instances.
    pub window: u32,
    /// Values a proposer may have in flight (proposed but not yet seen
    /// delivered). Models the paper's per-proposer circular buffer: when
    /// the buffer is full the proposer blocks, self-clocking its rate to
    /// what the ring sustains.
    pub proposer_inflight: u32,
    /// Acceptor persistence.
    pub storage: StorageMode,
    /// Disk write unit.
    pub disk_unit: u32,
    /// Wire size of control-only messages.
    pub ctl_bytes: u32,
    /// Failover: silence threshold after which non-coordinator acceptors
    /// suspect the coordinator and the coordinator probes a stalled ring
    /// (§3.3.5 applied to U-Ring, the ch. 7 reconfiguration lesson).
    /// `None` disables the failover machinery entirely — no suspicion or
    /// heartbeat timers run, preserving the historical single-epoch
    /// behaviour (and the golden traces) bit for bit.
    pub suspicion_timeout: Option<Dur>,
}

impl URingConfig {
    /// A default configuration over `ring` with the first
    /// `n_acceptors` positions acting as acceptors and everyone learning.
    pub fn new(ring: Vec<NodeId>, n_acceptors: usize) -> URingConfig {
        let n = ring.len();
        URingConfig {
            ring,
            acceptor_positions: (0..n_acceptors).collect(),
            learner_positions: (0..n).collect(),
            packet_bytes: 32 * 1024,
            batch_timeout: Dur::micros(200),
            window: 32,
            proposer_inflight: (6 * n as u32).max(32),
            storage: StorageMode::InMemory,
            disk_unit: 32 * 1024,
            ctl_bytes: 32,
            suspicion_timeout: None,
        }
    }

    /// The coordinator (position 0).
    pub fn coordinator(&self) -> NodeId {
        self.ring[0]
    }

    /// Successor of ring position `pos`.
    pub fn successor_of(&self, pos: usize) -> NodeId {
        self.ring[(pos + 1) % self.ring.len()]
    }

    /// The position of the last acceptor — the process that detects
    /// decisions in U-Ring Paxos (Algorithm 3).
    pub fn last_acceptor_pos(&self) -> usize {
        *self.acceptor_positions.iter().max().expect("at least one acceptor")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(v: &[usize]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn mring_roles() {
        let cfg = MRingConfig::new(nodes(&[1, 2, 3]), nodes(&[4, 5]), GroupId(0));
        assert_eq!(cfg.coordinator(), NodeId(3));
        assert_eq!(cfg.first_acceptor(), NodeId(1));
        assert_eq!(cfg.successor(NodeId(1)), Some(NodeId(2)));
        assert_eq!(cfg.successor(NodeId(3)), Some(NodeId(1)), "ring wraps");
        assert_eq!(cfg.successor(NodeId(9)), None);
        assert_eq!(cfg.preferential_acceptor(0), NodeId(1));
        assert_eq!(cfg.preferential_acceptor(4), NodeId(2));
    }

    #[test]
    fn uring_roles() {
        let cfg = URingConfig::new(nodes(&[0, 1, 2, 3, 4]), 3);
        assert_eq!(cfg.coordinator(), NodeId(0));
        assert_eq!(cfg.last_acceptor_pos(), 2);
        assert_eq!(cfg.successor_of(4), NodeId(0));
        assert_eq!(cfg.learner_positions.len(), 5);
    }
}
