//! Application values and consensus batches.
//!
//! Ring Paxos executes consensus on *batches*: the coordinator packs many
//! application values into one packet (8 KB for M-Ring Paxos, 32 KB for
//! U-Ring Paxos) and runs one consensus instance per packet (§3.5.2).

use std::rc::Rc;

use abcast::MsgId;
use simnet::ids::NodeId;
use simnet::time::Time;

/// One application value travelling through the broadcast layer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Value {
    /// Globally unique message id.
    pub id: MsgId,
    /// Node that proposed the value (records latency, receives dedup).
    pub proposer: NodeId,
    /// Per-proposer sequence number, used to deduplicate after failover.
    pub seq: u64,
    /// Application payload size in bytes.
    pub bytes: u32,
    /// When the proposer submitted the value (for latency measurement).
    pub submitted: Time,
    /// Partition bitmask for state partitioning (ch. 4 §4.2.2): which
    /// partitions the command accesses. `ALL_PARTITIONS` for classic
    /// (unpartitioned) broadcast.
    pub mask: u32,
}

/// Mask meaning "every partition" (classic atomic broadcast).
pub const ALL_PARTITIONS: u32 = u32::MAX;

/// An immutable, cheaply clonable batch of values — the `v-val` of one
/// consensus instance.
pub type Batch = Rc<Vec<Value>>;

/// Total application payload bytes in a batch.
pub fn batch_bytes(batch: &Batch) -> u64 {
    batch.iter().map(|v| v.bytes as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_bytes_sums_payloads() {
        let b: Batch = Rc::new(vec![
            Value { id: MsgId(1), proposer: NodeId(0), seq: 0, bytes: 100, submitted: Time::ZERO, mask: ALL_PARTITIONS },
            Value { id: MsgId(2), proposer: NodeId(0), seq: 1, bytes: 156, submitted: Time::ZERO, mask: ALL_PARTITIONS },
        ]);
        assert_eq!(batch_bytes(&b), 256);
    }
}
