//! Application values and consensus batches.
//!
//! Ring Paxos executes consensus on *batches*: the coordinator packs many
//! application values into one packet (8 KB for M-Ring Paxos, 32 KB for
//! U-Ring Paxos) and runs one consensus instance per packet (§3.5.2).
//!
//! # Cached routing
//!
//! A batch travels every link of the ring, and each hop must know how
//! many payload bytes it actually carries (a value's payload is omitted
//! on hops where the receiver has already seen it — the rule that makes
//! U-Ring Paxos ~90 % efficient, Table 3.2). Computing that per hop from
//! scratch costs O(batch × ring) lookups of each proposer's ring
//! position. [`BatchData`] therefore precomputes, once at pack time:
//!
//! * the batch's **total payload bytes** ([`BatchData::payload_bytes`],
//!   read constantly by M-Ring's wire-size calculations), and
//! * a **per-position suffix table** of payload bytes
//!   ([`BatchData::bytes_needed_beyond`]), which turns U-Ring's per-hop
//!   byte calculation into a single table read.
//!
//! A [`Batch`] is an `Arc<BatchData>`: cloning is a reference-count bump,
//! exactly as with the previous `Arc<Vec<Value>>` representation, and the
//! cached tables are shared by every process the batch passes through.

use std::ops::Deref;
use std::sync::Arc;

use abcast::MsgId;
use simnet::ids::NodeId;
use simnet::time::Time;

/// One application value travelling through the broadcast layer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Value {
    /// Globally unique message id.
    pub id: MsgId,
    /// Node that proposed the value (records latency, receives dedup).
    pub proposer: NodeId,
    /// Per-proposer sequence number, used to deduplicate after failover.
    pub seq: u64,
    /// Application payload size in bytes.
    pub bytes: u32,
    /// When the proposer submitted the value (for latency measurement).
    pub submitted: Time,
    /// Partition bitmask for state partitioning (ch. 4 §4.2.2): which
    /// partitions the command accesses. `ALL_PARTITIONS` for classic
    /// (unpartitioned) broadcast.
    pub mask: u32,
}

/// Mask meaning "every partition" (classic atomic broadcast).
pub const ALL_PARTITIONS: u32 = u32::MAX;

/// An immutable, cheaply clonable batch of values — the `v-val` of one
/// consensus instance — with routing tables precomputed at pack time.
pub type Batch = Arc<BatchData>;

/// The values of one consensus instance plus cached routing data.
/// Dereferences to `[Value]`, so iteration and indexing read exactly as
/// they did when `Batch` was `Arc<Vec<Value>>`.
#[derive(Debug, PartialEq)]
pub struct BatchData {
    values: Vec<Value>,
    /// Total application payload bytes (cached `Σ values[i].bytes`).
    total_bytes: u64,
    /// `suffix[p]` = payload bytes of values whose proposer sits at a
    /// ring position ≥ `p` (positions ≥ 1 only). Empty for batches packed
    /// without a ring (M-Ring, skips): every hop then carries the full
    /// payload, which is M-Ring's actual behaviour.
    suffix: Vec<u64>,
    /// Payload bytes of values that every hop must carry: proposer at
    /// ring position 0 (the coordinator) or off-ring.
    always_bytes: u64,
}

impl BatchData {
    /// Packs `values` without ring-position data (M-Ring Paxos batches,
    /// skip batches, tests). Total bytes are still cached.
    pub fn new(values: Vec<Value>) -> Batch {
        let total_bytes = values.iter().map(|v| v.bytes as u64).sum();
        Arc::new(BatchData { values, total_bytes, suffix: Vec::new(), always_bytes: total_bytes })
    }

    /// The empty batch (skip instances, takeover placeholders).
    pub fn empty() -> Batch {
        BatchData::new(Vec::new())
    }

    /// Packs `values` for a U-Ring deployment, caching each value's
    /// proposer position on `ring` as a per-position byte-suffix table.
    /// Pack time is O(batch × ring); every subsequent
    /// [`BatchData::bytes_needed_beyond`] is O(1).
    pub fn pack(values: Vec<Value>, ring: &[NodeId]) -> Batch {
        let mut total_bytes = 0u64;
        let mut always_bytes = 0u64;
        // per_pos[p] = payload bytes proposed from ring position p.
        let mut per_pos = vec![0u64; ring.len() + 1];
        for v in &values {
            total_bytes += v.bytes as u64;
            match ring.iter().position(|&n| n == v.proposer) {
                // Position 0 (the coordinator) and off-ring proposers:
                // every forwarding hop needs the payload.
                Some(0) | None => always_bytes += v.bytes as u64,
                Some(p) => per_pos[p] += v.bytes as u64,
            }
        }
        // suffix[p] = Σ per_pos[p..]
        let mut suffix = per_pos;
        for p in (0..suffix.len().saturating_sub(1)).rev() {
            suffix[p] += suffix[p + 1];
        }
        Arc::new(BatchData { values, total_bytes, suffix, always_bytes })
    }

    /// The values in the batch.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Total application payload bytes (cached).
    pub fn payload_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Payload bytes a hop into ring position `next_pos` must carry for
    /// values whose proposer sits *at or beyond* that position — i.e.
    /// receivers that have not yet seen those payloads on the value's way
    /// to the coordinator — plus the always-carried bytes. O(1) from the
    /// pack-time table.
    pub fn bytes_needed_beyond(&self, next_pos: usize) -> u64 {
        let suffixed = if next_pos + 1 < self.suffix.len() { self.suffix[next_pos + 1] } else { 0 };
        self.always_bytes + suffixed
    }
}

impl Deref for BatchData {
    type Target = [Value];
    fn deref(&self) -> &[Value] {
        &self.values
    }
}

/// Total application payload bytes in a batch (cached field read).
pub fn batch_bytes(batch: &Batch) -> u64 {
    batch.payload_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(id: u64, proposer: usize, bytes: u32) -> Value {
        Value {
            id: MsgId(id),
            proposer: NodeId(proposer),
            seq: id,
            bytes,
            submitted: Time::ZERO,
            mask: ALL_PARTITIONS,
        }
    }

    #[test]
    fn batch_bytes_sums_payloads() {
        let b: Batch = BatchData::new(vec![val(1, 0, 100), val(2, 0, 156)]);
        assert_eq!(batch_bytes(&b), 256);
        assert_eq!(b.payload_bytes(), 256);
    }

    #[test]
    fn deref_iterates_values() {
        let b = BatchData::new(vec![val(1, 0, 10), val(2, 1, 20)]);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.iter().map(|v| v.bytes).sum::<u32>(), 30);
        assert!(BatchData::empty().is_empty());
    }

    #[test]
    fn suffix_table_matches_linear_scan() {
        let ring: Vec<NodeId> = (0..5).map(NodeId).collect();
        // Proposers at positions 0 (coordinator), 2, 4, and one off-ring.
        let values = vec![val(1, 0, 100), val(2, 2, 200), val(3, 4, 400), val(4, 99, 800)];
        let b = BatchData::pack(values.clone(), &ring);
        for next_pos in 0..ring.len() {
            // Reference: the original O(batch × ring) rule.
            let want: u64 = values
                .iter()
                .map(|v| {
                    let p = ring.iter().position(|&n| n == v.proposer);
                    let needed = match p {
                        Some(0) | None => true,
                        Some(p) => next_pos < p,
                    };
                    if needed {
                        v.bytes as u64
                    } else {
                        0
                    }
                })
                .sum();
            assert_eq!(b.bytes_needed_beyond(next_pos), want, "next_pos {next_pos}");
        }
    }

    #[test]
    fn unindexed_batch_carries_everything() {
        let b = BatchData::new(vec![val(1, 2, 100), val(2, 3, 200)]);
        for pos in 0..4 {
            assert_eq!(b.bytes_needed_beyond(pos), 300);
        }
    }
}
