//! Wire messages of the Ring Paxos protocols.

use std::sync::Arc;

use paxos::msg::{InstanceId, Round};
use simnet::ids::NodeId;

use crate::value::{Batch, Value};

/// Messages exchanged by M-Ring Paxos processes (Algorithm 2 plus the
/// engineering machinery of §3.3.4–§3.3.7).
#[derive(Clone, Debug)]
pub enum MMsg {
    /// Proposer submits a value to the coordinator.
    Propose(Value),
    /// Coordinator ip-multicasts a proposal; decisions of earlier
    /// instances and the GC watermark ride along (§3.3.2 optimization).
    Phase2a {
        /// Consensus instance of this batch.
        instance: InstanceId,
        /// Coordinator's round.
        round: Round,
        /// The proposed batch of values.
        batch: Batch,
        /// Instances decided since the last packet, with each instance's
        /// partition mask (piggybacked DECISION).
        decisions: Arc<Vec<(InstanceId, u32)>>,
        /// Acceptors may discard state below this instance (§3.3.7).
        gc_upto: InstanceId,
        /// Logical instances this batch stands for beyond itself:
        /// `0` for a normal batch; a skip batch (Multi-Ring Paxos, ch. 5)
        /// carries an empty value list and the number of instances being
        /// skipped in one consensus execution.
        skip: u64,
        /// Partition mask of this batch (`ALL_PARTITIONS` when classic).
        mask: u32,
        /// Every instance below this is decided (the coordinator's lowest
        /// outstanding instance). Lets acceptors answer retransmission
        /// requests authoritatively even if an individual decision
        /// notification was lost.
        decided_below: InstanceId,
    },
    /// Vote relayed along the ring; reaching the coordinator completes the
    /// quorum.
    Phase2b {
        /// Voted instance.
        instance: InstanceId,
        /// Voted round.
        round: Round,
    },
    /// Standalone decision notification (when there is no 2A to piggyback
    /// on).
    Decision {
        /// Newly decided instances with their partition masks.
        instances: Arc<Vec<(InstanceId, u32)>>,
        /// Round in which these instances were decided — learners match
        /// it against the round of their buffered payload, the moral
        /// equivalent of the paper's consensus-on-value-ids (`c-vid`).
        round: Round,
        /// GC watermark.
        gc_upto: InstanceId,
        /// Every instance below this is decided.
        decided_below: InstanceId,
    },
    /// Learner → acceptor → … → coordinator: slow down (§3.3.6).
    SlowDown,
    /// Learner asks its preferential acceptor for lost instances (§3.3.4).
    RetransReq {
        /// Requesting learner.
        from: NodeId,
        /// Instances whose payload or decision is missing.
        instances: Vec<InstanceId>,
    },
    /// Retransmission of one instance to a learner.
    RetransRep {
        /// The instance.
        instance: InstanceId,
        /// Its batch (the acceptor's stored vote).
        batch: Batch,
        /// Whether the acceptor knows it decided.
        decided: bool,
        /// Round of the acceptor's stored vote.
        round: Round,
        /// Skip weight of the batch (see [`MMsg::Phase2a::skip`]).
        skip: u64,
        /// Partition mask of the batch.
        mask: u32,
    },
    /// Learner reports its applied version for garbage collection.
    Version {
        /// Reporting learner.
        learner: NodeId,
        /// Highest instance applied, plus one.
        applied: InstanceId,
    },
    /// Failover: candidate coordinator starts a higher round.
    Phase1a {
        /// New round.
        round: Round,
        /// Candidate node.
        from: NodeId,
    },
    /// Failover: acceptor's promise with its vote state.
    Phase1b {
        /// Promised round.
        round: Round,
        /// Promising acceptor.
        from: NodeId,
        /// Votes: `(instance, v-rnd, batch)`.
        votes: Vec<(InstanceId, Round, Batch)>,
        /// Instances the acceptor knows are decided.
        decided: Vec<InstanceId>,
    },
    /// New coordinator announces itself and the reformed ring.
    NewRing {
        /// The new round.
        round: Round,
        /// The new coordinator.
        coord: NodeId,
        /// Acceptors in new ring order (coordinator last).
        ring: Vec<NodeId>,
    },
    /// Ring repair (§3.3.4/§3.3.5): the coordinator probes the acceptors
    /// when the 2B relay stalls, before laying out a new ring that
    /// excludes the silent process.
    Ping {
        /// The probing coordinator.
        from: NodeId,
    },
    /// An acceptor's liveness reply to a [`MMsg::Ping`].
    Pong {
        /// The responding acceptor.
        from: NodeId,
    },
    /// Keep-alive multicast by an idle coordinator. Carries the ring
    /// layout so processes that missed a `NewRing` (e.g., restarted after
    /// a pause) resynchronize.
    Heartbeat {
        /// Coordinator's round.
        round: Round,
        /// The coordinator.
        coord: NodeId,
        /// Current ring layout.
        ring: Vec<NodeId>,
    },
    /// Recovery: a restarted learner asks its preferential acceptor for
    /// the decided suffix from `next` in bulk, over TCP (the per-loss
    /// UDP retransmission path is too slow for a whole outage).
    CatchupReq {
        /// The recovering learner.
        from: NodeId,
        /// First instance it is missing.
        next: InstanceId,
    },
    /// Recovery: a chunk of decided instances from the acceptor's
    /// stored votes, `(instance, batch, vote round, skip, mask)`.
    CatchupRep {
        /// Contiguous decided instances from the requested point.
        batches: Vec<(InstanceId, Batch, Round, u64, u32)>,
        /// One past the highest instance the acceptor knows decided.
        upto: InstanceId,
        /// Lowest instance the acceptor can still serve (its GC
        /// watermark). When this is above the requested point, the
        /// requester has fallen behind the ring's §3.3.7 collection and
        /// must fetch a peer learner's checkpoint first ([`MMsg::SnapReq`]).
        available_from: InstanceId,
    },
    /// Recovery: a learner that fell below the acceptors' GC watermark
    /// asks a peer learner for its durable checkpoint (the paper's
    /// "state transfer from a peer with a sufficiently recent version",
    /// §3.3.7). Over TCP.
    SnapReq {
        /// The requesting learner.
        from: NodeId,
    },
    /// Recovery: a peer learner's durable checkpoint; `state_bytes` are
    /// charged on the wire.
    SnapRep {
        /// The checkpoint (absent when the peer has none yet).
        snap: Option<recovery::Checkpoint>,
    },
}

/// Messages of U-Ring Paxos (Algorithm 3). All travel over TCP between
/// ring neighbours.
#[derive(Clone, Debug)]
pub enum UMsg {
    /// A value forwarded along the ring towards the coordinator (Task 1).
    Forward(Value),
    /// Combined Phase 2A/2B travelling down the acceptor segment.
    Phase2ab {
        /// Consensus instance.
        instance: InstanceId,
        /// Round.
        round: Round,
        /// Proposed batch.
        batch: Batch,
    },
    /// Decision circulating the ring (Task 5). The batch object rides
    /// along for delivery, but each value's bytes are only charged on the
    /// wire until the hop before its proposer — every payload crosses
    /// every link exactly once, which is what makes U-Ring Paxos ~90%
    /// efficient (Table 3.2).
    Decision {
        /// Decided instance.
        instance: InstanceId,
        /// The decided batch.
        batch: Batch,
        /// How many more hops the decision id must travel.
        id_hops_left: u32,
        /// Configuration round the forwarder was in. Delivery is always
        /// safe (a decision is a decision), but a process only keeps
        /// *forwarding* it around a ring layout it still agrees on.
        round: Round,
    },
    /// Failover: candidate coordinator starts a higher round (epoch).
    Phase1a {
        /// New round.
        round: Round,
        /// Candidate node.
        from: NodeId,
    },
    /// Failover: acceptor's promise with its accepted-vote state, from
    /// which the new coordinator reconstructs instance allocation.
    Phase1b {
        /// Promised round.
        round: Round,
        /// Promising acceptor.
        from: NodeId,
        /// Votes above the acceptor's delivery watermark:
        /// `(instance, v-rnd, batch)`.
        votes: Vec<(InstanceId, Round, Batch)>,
        /// The acceptor has delivered (hence knows decided) everything
        /// below this instance.
        decided_below: InstanceId,
    },
    /// New coordinator (or a repairing one) announces the new epoch and
    /// ring layout. Position 0 of `ring` is the coordinator; acceptors
    /// stay contiguous from position 0.
    NewRing {
        /// The new round.
        round: Round,
        /// The new coordinator (`ring[0]`).
        coord: NodeId,
        /// Every process of the new ring, in ring order.
        ring: Vec<NodeId>,
    },
    /// Keep-alive from the coordinator. Carries round and layout so
    /// processes that missed a `NewRing` (paused, respawned, excluded)
    /// resynchronize; its absence drives suspicion.
    Heartbeat {
        /// Coordinator's round.
        round: Round,
        /// The coordinator.
        coord: NodeId,
        /// Current ring layout (`ring[0]` = coordinator).
        ring: Vec<NodeId>,
    },
    /// Ring repair: the coordinator probes all members when the 2ab/ack
    /// flow stalls, before splicing silent processes out of the ring.
    Ping {
        /// The probing coordinator.
        from: NodeId,
    },
    /// A member's liveness reply to a [`UMsg::Ping`].
    Pong {
        /// The responding member.
        from: NodeId,
    },
    /// A process that finds itself outside the current ring layout (it
    /// was spliced out while crashed, or respawned) asks the coordinator
    /// to splice it back in.
    JoinReq {
        /// The joining process.
        from: NodeId,
    },
    /// A restarted learner asks `from` for the decided suffix starting
    /// at `next` (its recovered checkpoint watermark). Travels over the
    /// reliable channel, outside the ring flow.
    CatchupReq {
        /// The recovering learner.
        from: NodeId,
        /// First instance it is missing.
        next: InstanceId,
    },
    /// A chunk of the decided suffix (recovery catch-up). When the
    /// requester had fallen below the responder's trim point, `snap`
    /// carries the responder's checkpoint first — a state transfer whose
    /// `state_bytes` are charged on the wire along with the batches.
    CatchupRep {
        /// Checkpoint to restore before applying `batches` (state
        /// transfer), when the requester was behind the trim point.
        snap: Option<recovery::Checkpoint>,
        /// Contiguous decided instances from the requested point.
        batches: Vec<(InstanceId, Batch)>,
        /// One past the responder's highest decided instance — when the
        /// requester reaches it, catch-up is complete.
        upto: InstanceId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcast::MsgId;
    use simnet::time::Time;

    #[test]
    fn messages_are_cheap_to_clone() {
        let batch: Batch = crate::value::BatchData::new(vec![Value {
            id: MsgId(1),
            proposer: NodeId(0),
            seq: 0,
            bytes: 8192,
            submitted: Time::ZERO,
            mask: crate::value::ALL_PARTITIONS,
        }]);
        let m = MMsg::Phase2a {
            instance: InstanceId(0),
            round: Round::ZERO,
            batch: batch.clone(),
            decisions: Arc::new(vec![]),
            gc_upto: InstanceId(0),
            skip: 0,
            mask: crate::value::ALL_PARTITIONS,
            decided_below: InstanceId(0),
        };
        let m2 = m.clone();
        assert!(matches!(m2, MMsg::Phase2a { .. }));
        assert_eq!(Arc::strong_count(&batch), 3);
    }
}
