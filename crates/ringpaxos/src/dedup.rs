//! Bounded duplicate detection for delivered values.
//!
//! Learners must deliver each value exactly once even when failover makes
//! proposers resubmit (§3.3.5). The naive approach — a `HashSet` of every
//! delivered [`MsgId`](abcast::MsgId) — grows without bound over a long
//! run (a real memory leak at hundreds of thousands of deliveries per
//! second) and pays a hash per delivered value.
//!
//! [`DeliveredTracker`] exploits the structure of the ids: each proposer
//! stamps values with a contiguous per-proposer sequence number, and
//! deliveries are *almost* in per-proposer order (out-of-order deliveries
//! happen only around failover resubmission). Per proposer we keep one
//! **watermark** — the lowest sequence not yet known delivered — plus a
//! small overflow set for the out-of-order window above it. The common
//! case (`seq == watermark`) is an array index and an increment; memory
//! is O(proposers + transient out-of-order window) instead of
//! O(deliveries).

use std::collections::BTreeSet;

use simnet::ids::NodeId;

/// Upper bound on parked out-of-order entries. The overflow set only
/// grows while deliveries arrive out of per-proposer order (failover
/// windows), so in steady state it is near-empty; the bound is a backstop
/// against pathological reordering keeping the tracker O(proposers).
pub const MAX_OVERFLOW: usize = 4096;

/// Exactly-once filter over `(proposer, seq)` pairs with per-proposer
/// contiguous-sequence watermarks and a bounded overflow set.
///
/// When the overflow set hits [`MAX_OVERFLOW`], the lowest parked run of
/// the proposer with the *most* parked entries — the one driving the
/// pathology — is evicted by collapsing that proposer's watermark up
/// past it. That treats the unseen gap below the evicted run as
/// delivered: a value in the gap that later arrives for the first time
/// is reported as a duplicate (i.e. lost). Eviction therefore trades
/// possible message loss for the misbehaving stream against a hard
/// memory bound, while preserving at-most-once delivery — never
/// duplication — and leaving well-behaved proposers untouched.
#[derive(Debug, Default)]
pub struct DeliveredTracker {
    /// `marks[p]` = lowest sequence of proposer `p` not yet delivered
    /// (every seq below it has been). Grown on first use per proposer.
    marks: Vec<u64>,
    /// Delivered sequences at or above their proposer's watermark
    /// (out-of-order window; drained as the watermark advances).
    overflow: BTreeSet<(usize, u64)>,
    /// `parked[p]` = entries of proposer `p` in `overflow` (eviction
    /// picks the largest).
    parked: Vec<usize>,
}

impl DeliveredTracker {
    /// Creates an empty tracker.
    pub fn new() -> DeliveredTracker {
        DeliveredTracker::default()
    }

    /// Records a delivery of `(proposer, seq)`. Returns `true` when fresh
    /// (deliver it) and `false` for a duplicate (drop it).
    pub fn fresh(&mut self, proposer: NodeId, seq: u64) -> bool {
        let p = proposer.0;
        if p >= self.marks.len() {
            self.marks.resize(p + 1, 0);
            self.parked.resize(p + 1, 0);
        }
        let mark = self.marks[p];
        if seq < mark {
            return false;
        }
        if seq == mark {
            // The common case: in-order delivery. Advance the watermark
            // through any overflow entries it now reaches.
            let mut next = mark + 1;
            while self.overflow.remove(&(p, next)) {
                self.parked[p] -= 1;
                next += 1;
            }
            self.marks[p] = next;
            true
        } else {
            // Out-of-order (failover window): park above the watermark.
            let inserted = self.overflow.insert((p, seq));
            if inserted {
                self.parked[p] += 1;
                if self.overflow.len() > MAX_OVERFLOW {
                    self.evict_heaviest();
                }
            }
            inserted
        }
    }

    /// Drops the lowest parked run of the proposer with the most parked
    /// entries by collapsing that proposer's watermark past it. See the
    /// type docs for the semantics. O(proposers + run) per call, and
    /// called at most once per insert beyond the bound.
    fn evict_heaviest(&mut self) {
        let Some(victim) = (0..self.parked.len()).max_by_key(|&p| self.parked[p]) else { return };
        let Some(&(p, seq)) = self.overflow.range((victim, 0)..=(victim, u64::MAX)).next() else {
            return;
        };
        self.overflow.remove(&(p, seq));
        self.parked[p] -= 1;
        let mut next = seq + 1;
        while self.overflow.remove(&(p, next)) {
            self.parked[p] -= 1;
            next += 1;
        }
        self.marks[p] = self.marks[p].max(next);
    }

    /// Entries currently parked out of order (diagnostics/tests).
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// Externalizes the tracker for a checkpoint: the per-proposer
    /// watermarks plus any entries parked out of order above them.
    pub fn export(&self) -> (Vec<u64>, Vec<(u64, u64)>) {
        let parked = self.overflow.iter().map(|&(p, s)| (p as u64, s)).collect();
        (self.marks.clone(), parked)
    }

    /// Rebuilds a tracker from checkpointed state ([`DeliveredTracker::
    /// export`]), so a restarted learner resumes exactly-once filtering
    /// from the checkpoint's basis.
    pub fn restore(marks: Vec<u64>, parked: Vec<(u64, u64)>) -> DeliveredTracker {
        let mut t =
            DeliveredTracker { parked: vec![0; marks.len()], marks, overflow: BTreeSet::new() };
        for (p, s) in parked {
            let p = p as usize;
            if p >= t.marks.len() {
                t.marks.resize(p + 1, 0);
                t.parked.resize(p + 1, 0);
            }
            if t.overflow.insert((p, s)) {
                t.parked[p] += 1;
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream_uses_no_overflow() {
        let mut t = DeliveredTracker::new();
        for seq in 0..10_000 {
            assert!(t.fresh(NodeId(3), seq));
        }
        assert_eq!(t.overflow_len(), 0);
        // Everything replays as a duplicate.
        for seq in 0..10_000 {
            assert!(!t.fresh(NodeId(3), seq));
        }
    }

    #[test]
    fn out_of_order_window_drains() {
        let mut t = DeliveredTracker::new();
        assert!(t.fresh(NodeId(0), 2));
        assert!(t.fresh(NodeId(0), 1));
        assert_eq!(t.overflow_len(), 2);
        assert!(t.fresh(NodeId(0), 0)); // watermark sweeps through 0..=2
        assert_eq!(t.overflow_len(), 0);
        assert!(!t.fresh(NodeId(0), 1));
        assert!(!t.fresh(NodeId(0), 2));
        assert!(t.fresh(NodeId(0), 3));
    }

    #[test]
    fn proposers_are_independent() {
        let mut t = DeliveredTracker::new();
        assert!(t.fresh(NodeId(0), 0));
        assert!(t.fresh(NodeId(7), 0));
        assert!(!t.fresh(NodeId(7), 0));
        assert!(t.fresh(NodeId(7), 1));
        assert!(t.fresh(NodeId(0), 1));
    }

    #[test]
    fn duplicate_in_overflow_detected() {
        let mut t = DeliveredTracker::new();
        assert!(t.fresh(NodeId(1), 5));
        assert!(!t.fresh(NodeId(1), 5));
        assert!(t.fresh(NodeId(1), 0));
        assert!(!t.fresh(NodeId(1), 5));
    }

    #[test]
    fn overflow_evicts_at_the_bound() {
        let mut t = DeliveredTracker::new();
        // Park MAX_OVERFLOW out-of-order entries (seq 1.. leaves the
        // watermark at 0, so nothing collapses).
        for seq in 1..=MAX_OVERFLOW as u64 {
            assert!(t.fresh(NodeId(0), seq));
        }
        assert_eq!(t.overflow_len(), MAX_OVERFLOW);
        // One more entry trips the bound: this proposer owns every parked
        // entry, so its lowest run (1..=MAX_OVERFLOW, contiguous) is
        // evicted by collapsing the watermark.
        assert!(t.fresh(NodeId(0), MAX_OVERFLOW as u64 + 2));
        assert!(t.overflow_len() <= MAX_OVERFLOW, "bound not enforced");
        // The evicted run is still deduplicated (watermark covers it)...
        assert!(!t.fresh(NodeId(0), 1));
        assert!(!t.fresh(NodeId(0), MAX_OVERFLOW as u64));
        // ...and so is the unseen gap it collapsed over (seq 0 was never
        // delivered; suppressing it is the documented loss-not-dup trade).
        assert!(!t.fresh(NodeId(0), 0));
    }

    #[test]
    fn eviction_hits_the_flooding_proposer_not_bystanders() {
        let mut t = DeliveredTracker::new();
        // Proposer 9 floods the overflow set; proposer 1 has one benign
        // parked entry (watermark 0, seqs 0.. still in flight).
        for seq in 1..=MAX_OVERFLOW as u64 - 1 {
            assert!(t.fresh(NodeId(9), seq));
        }
        assert!(t.fresh(NodeId(1), 7));
        assert_eq!(t.overflow_len(), MAX_OVERFLOW);
        assert!(t.fresh(NodeId(1), 9)); // trips the bound
        assert!(t.overflow_len() <= MAX_OVERFLOW);
        // The flooder's run was evicted (its watermark collapsed)...
        assert!(!t.fresh(NodeId(9), 1));
        assert!(!t.fresh(NodeId(9), MAX_OVERFLOW as u64 - 1));
        // ...while the bystander's state is fully intact: parked entries
        // still deduplicate and its in-flight low seqs still deliver.
        assert!(!t.fresh(NodeId(1), 7));
        assert!(!t.fresh(NodeId(1), 9));
        assert!(t.fresh(NodeId(1), 0));
        assert!(t.fresh(NodeId(1), 8));
    }

    #[test]
    fn watermark_advance_collapses_overflow_in_runs() {
        let mut t = DeliveredTracker::new();
        // Park 2, 3, 5 (gap at 4).
        assert!(t.fresh(NodeId(0), 2));
        assert!(t.fresh(NodeId(0), 3));
        assert!(t.fresh(NodeId(0), 5));
        assert_eq!(t.overflow_len(), 3);
        // Delivering 0 advances the watermark to 1 only (2 is not
        // contiguous with 0's sweep).
        assert!(t.fresh(NodeId(0), 0));
        assert_eq!(t.overflow_len(), 3);
        // Delivering 1 sweeps the contiguous run 2, 3 but stops at the
        // gap before 5.
        assert!(t.fresh(NodeId(0), 1));
        assert_eq!(t.overflow_len(), 1);
        assert!(!t.fresh(NodeId(0), 2), "collapsed entries stay duplicates");
        assert!(!t.fresh(NodeId(0), 3));
        // Filling the gap sweeps the rest.
        assert!(t.fresh(NodeId(0), 4));
        assert_eq!(t.overflow_len(), 0);
        assert!(!t.fresh(NodeId(0), 5));
        assert!(t.fresh(NodeId(0), 6));
    }

    #[test]
    fn out_of_order_straddling_the_watermark() {
        let mut t = DeliveredTracker::new();
        // In-order prefix moves the watermark to 3.
        for seq in 0..3 {
            assert!(t.fresh(NodeId(0), seq));
        }
        // A resubmission burst delivers 5 early, then replays 1 (below
        // the watermark) and finally fills 3 and 4.
        assert!(t.fresh(NodeId(0), 5));
        assert!(!t.fresh(NodeId(0), 1), "below-watermark replay is a duplicate");
        assert!(!t.fresh(NodeId(0), 5), "parked replay is a duplicate");
        assert!(t.fresh(NodeId(0), 3));
        assert_eq!(t.overflow_len(), 1, "5 still parked across the advance");
        assert!(t.fresh(NodeId(0), 4));
        assert_eq!(t.overflow_len(), 0);
        assert!(!t.fresh(NodeId(0), 4));
        assert!(!t.fresh(NodeId(0), 5));
        assert!(t.fresh(NodeId(0), 6));
    }
}
