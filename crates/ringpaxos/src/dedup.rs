//! Bounded duplicate detection for delivered values.
//!
//! Learners must deliver each value exactly once even when failover makes
//! proposers resubmit (§3.3.5). The naive approach — a `HashSet` of every
//! delivered [`MsgId`](abcast::MsgId) — grows without bound over a long
//! run (a real memory leak at hundreds of thousands of deliveries per
//! second) and pays a hash per delivered value.
//!
//! [`DeliveredTracker`] exploits the structure of the ids: each proposer
//! stamps values with a contiguous per-proposer sequence number, and
//! deliveries are *almost* in per-proposer order (out-of-order deliveries
//! happen only around failover resubmission). Per proposer we keep one
//! **watermark** — the lowest sequence not yet known delivered — plus a
//! small overflow set for the out-of-order window above it. The common
//! case (`seq == watermark`) is an array index and an increment; memory
//! is O(proposers + transient out-of-order window) instead of
//! O(deliveries).

use std::collections::BTreeSet;

use simnet::ids::NodeId;

/// Exactly-once filter over `(proposer, seq)` pairs with per-proposer
/// contiguous-sequence watermarks and a bounded overflow set.
#[derive(Debug, Default)]
pub struct DeliveredTracker {
    /// `marks[p]` = lowest sequence of proposer `p` not yet delivered
    /// (every seq below it has been). Grown on first use per proposer.
    marks: Vec<u64>,
    /// Delivered sequences at or above their proposer's watermark
    /// (out-of-order window; drained as the watermark advances).
    overflow: BTreeSet<(usize, u64)>,
}

impl DeliveredTracker {
    /// Creates an empty tracker.
    pub fn new() -> DeliveredTracker {
        DeliveredTracker::default()
    }

    /// Records a delivery of `(proposer, seq)`. Returns `true` when fresh
    /// (deliver it) and `false` for a duplicate (drop it).
    pub fn fresh(&mut self, proposer: NodeId, seq: u64) -> bool {
        let p = proposer.0;
        if p >= self.marks.len() {
            self.marks.resize(p + 1, 0);
        }
        let mark = self.marks[p];
        if seq < mark {
            return false;
        }
        if seq == mark {
            // The common case: in-order delivery. Advance the watermark
            // through any overflow entries it now reaches.
            let mut next = mark + 1;
            while self.overflow.remove(&(p, next)) {
                next += 1;
            }
            self.marks[p] = next;
            true
        } else {
            // Out-of-order (failover window): park above the watermark.
            self.overflow.insert((p, seq))
        }
    }

    /// Entries currently parked out of order (diagnostics/tests).
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream_uses_no_overflow() {
        let mut t = DeliveredTracker::new();
        for seq in 0..10_000 {
            assert!(t.fresh(NodeId(3), seq));
        }
        assert_eq!(t.overflow_len(), 0);
        // Everything replays as a duplicate.
        for seq in 0..10_000 {
            assert!(!t.fresh(NodeId(3), seq));
        }
    }

    #[test]
    fn out_of_order_window_drains() {
        let mut t = DeliveredTracker::new();
        assert!(t.fresh(NodeId(0), 2));
        assert!(t.fresh(NodeId(0), 1));
        assert_eq!(t.overflow_len(), 2);
        assert!(t.fresh(NodeId(0), 0)); // watermark sweeps through 0..=2
        assert_eq!(t.overflow_len(), 0);
        assert!(!t.fresh(NodeId(0), 1));
        assert!(!t.fresh(NodeId(0), 2));
        assert!(t.fresh(NodeId(0), 3));
    }

    #[test]
    fn proposers_are_independent() {
        let mut t = DeliveredTracker::new();
        assert!(t.fresh(NodeId(0), 0));
        assert!(t.fresh(NodeId(7), 0));
        assert!(!t.fresh(NodeId(7), 0));
        assert!(t.fresh(NodeId(7), 1));
        assert!(t.fresh(NodeId(0), 1));
    }

    #[test]
    fn duplicate_in_overflow_detected() {
        let mut t = DeliveredTracker::new();
        assert!(t.fresh(NodeId(1), 5));
        assert!(!t.fresh(NodeId(1), 5));
        assert!(t.fresh(NodeId(1), 0));
        assert!(!t.fresh(NodeId(1), 5));
    }
}
