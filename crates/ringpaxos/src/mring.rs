//! Multicast-based Ring Paxos (M-Ring Paxos, thesis Algorithm 2).
//!
//! One [`MRingProcess`] actor runs per node; a process can combine the
//! proposer, acceptor/coordinator, and learner roles, exactly as in the
//! paper's deployments. The steady-state message flow is:
//!
//! 1. proposers send values to the coordinator (UDP);
//! 2. the coordinator batches values, assigns the next consensus instance,
//!    and ip-multicasts `Phase2a` to the ring acceptors and all learners,
//!    piggybacking decisions of earlier instances;
//! 3. the first ring acceptor votes on ip-delivery and unicasts `Phase2b`
//!    to its successor; each acceptor votes and forwards;
//! 4. when the `Phase2b` reaches the coordinator (the last ring process)
//!    the quorum is complete: the instance is decided and announced on the
//!    next multicast;
//! 5. learners deliver a batch once they hold its payload *and* decision,
//!    in instance order.
//!
//! The module also implements the paper's engineering machinery: message
//! loss recovery through preferential acceptors (§3.3.4), coordinator
//! failover (§3.3.5), window-based flow control with learner back-pressure
//! (§3.3.6), and version-vector garbage collection (§3.3.7).

use std::collections::VecDeque;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};

use abcast::{metric, MsgId, Pacer, SharedLog};
use paxos::acceptor::Acceptor;
use paxos::msg::{quorum, InstanceId, Round};
use paxos::window::Window;
use recovery::{Checkpointer, RecoveredApp, StableHandle};
use simnet::prelude::*;

use crate::config::{MRingConfig, StorageMode};
use crate::dedup::DeliveredTracker;
use crate::msg::MMsg;
use crate::value::{batch_bytes, Batch, BatchData, Value, ALL_PARTITIONS};

// Timer tokens: kind in the top byte, payload (instance) below.
const T_BATCH: u64 = 1 << 56;
const T_PACE: u64 = 2 << 56;
const T_GC: u64 = 3 << 56;
const T_FLOW: u64 = 4 << 56;
const T_DELIVER: u64 = 5 << 56;
const T_RETRANS: u64 = 6 << 56;
const T_SUSPECT: u64 = 7 << 56;
const T_HEARTBEAT: u64 = 8 << 56;
const T_DISK: u64 = 9 << 56;
const T_VOTE_RETRY: u64 = 10 << 56;
const T_SKIP: u64 = 11 << 56;
const T_RESUB: u64 = 12 << 56;
const T_CKPT: u64 = 13 << 56;
const T_CATCHUP: u64 = 14 << 56;
const KIND_MASK: u64 = 0xff << 56;

/// Decided instances served per recovery `CatchupRep` chunk.
const CATCHUP_CHUNK: usize = 64;
/// Retry period for an unanswered recovery `CatchupReq`.
const CATCHUP_RETRY: Dur = Dur::millis(100);
/// Checkpoint metadata bytes when no service snapshot is attached.
const CKPT_META_BYTES: u64 = 4096;

fn token_kind(t: TimerToken) -> u64 {
    t.0 & KIND_MASK
}

fn token_payload(t: TimerToken) -> u64 {
    t.0 & !KIND_MASK
}

/// Coordinator-only state.
#[derive(Debug)]
struct CoordState {
    pending: VecDeque<Value>,
    pending_bytes: u64,
    next_instance: InstanceId,
    /// Proposed but undecided: instance → (batch, last 2A multicast, mask).
    outstanding: BTreeMap<InstanceId, (Batch, Time, u32)>,
    /// Decided instances (with masks) not yet announced to the group.
    decided_unsent: Vec<(InstanceId, u32)>,
    window: u32,
    last_slowdown: Time,
    last_mcast: Time,
    /// Applied version reported by each learner (for GC).
    versions: HashMap<NodeId, InstanceId>,
    gc_watermark: InstanceId,
    /// Logical instances produced so far (normal batches count 1, skip
    /// batches count their weight) — Multi-Ring Paxos rate accounting.
    logical_count: u64,
    /// Logical target accumulated from `lambda * delta` per interval.
    logical_target: u64,
    /// Last time an outstanding instance completed its 2B relay (ring
    /// liveness signal for repair, §3.3.5).
    last_progress: Time,
    /// In-flight acceptor probe (ring repair).
    repair: Option<RepairState>,
}

/// Coordinator-side ring-repair probe: acceptors that answered the Ping
/// and when the probe started.
#[derive(Debug)]
struct RepairState {
    responders: BTreeSet<NodeId>,
    started: Time,
}

/// Acceptor-only state.
///
/// `decided` and `early_2b` are touched on the per-packet 2A/2B paths, so
/// both use the dense sliding [`Window`] (GC advances the base; the rare
/// write below the watermark falls back to the window's side map, exactly
/// matching the `BTreeSet`/`BTreeMap` they replace).
struct AccState {
    paxos: Acceptor<Batch>,
    /// Instances known decided (dense window over the undecided range).
    decided: Window<()>,
    /// Skip weight per instance (only non-zero entries stored).
    skip_weights: BTreeMap<InstanceId, u64>,
    /// Partition mask per instance (only non-ALL entries stored).
    masks: BTreeMap<InstanceId, u32>,
    /// Watermark from the coordinator: every instance below is decided.
    decided_below: InstanceId,
    /// Phase 2B received before the matching 2A (reordering).
    early_2b: Window<Round>,
    /// Instances whose sync disk write is still pending.
    awaiting_disk: BTreeSet<InstanceId>,
    last_coord_activity: Time,
}

/// Per-instance learner state: buffered payload (with the round of the
/// 2A that carried it — highest round wins, so stale coordinators cannot
/// poison delivery), announced decision round, and whether the instance
/// belongs to a foreign partition (skipped without payload, ch. 4
/// §4.2.2).
#[derive(Default)]
struct LearnerSlot {
    payload: Option<(Round, Batch)>,
    decided: Option<Round>,
    foreign: bool,
}

impl LearnerSlot {
    /// Deliverable: payload present and its round matches the deciding
    /// round (the paper's value-id check).
    fn ready(&self) -> bool {
        matches!((&self.decided, &self.payload), (Some(dr), Some((pr, _))) if dr == pr)
    }
}

/// Learner-only state. Instances at or above `next_deliver` live in a
/// dense sliding window (`window[instance - next_deliver]`): delivery
/// always advances the window's base, so the per-packet bookkeeping is
/// array indexing rather than the four tree searches per instance the
/// previous `BTreeMap`s cost.
struct LearnerState {
    index: usize,
    my_mask: u32,
    /// Slots for `next_deliver..`, indexed by offset.
    window: VecDeque<LearnerSlot>,
    next_deliver: InstanceId,
    /// Exactly-once filter over delivered values, bounded by per-proposer
    /// watermarks instead of an ever-growing id set.
    delivered: DeliveredTracker,
    slowdown_active: bool,
    applied_reported: InstanceId,
    /// Horizon snapshot from the previous retransmission check: only
    /// instances already visible a full interval ago are requested, so
    /// normally in-flight instances are not mistaken for losses.
    prev_horizon: InstanceId,
}

impl LearnerState {
    /// Mutable slot for `instance`, growing the window as needed.
    /// `None` when the instance is already delivered (below the window).
    #[inline]
    fn slot_mut(&mut self, instance: InstanceId) -> Option<&mut LearnerSlot> {
        if instance < self.next_deliver {
            return None;
        }
        let idx = (instance.0 - self.next_deliver.0) as usize;
        // Flow control bounds how far instances run ahead of delivery; a
        // far-ahead id would turn one packet into a huge resize.
        debug_assert!(
            idx < self.window.len() + (1 << 24),
            "learner window jump: instance {instance:?} vs next_deliver {:?}",
            self.next_deliver
        );
        if idx >= self.window.len() {
            self.window.resize_with(idx + 1, LearnerSlot::default);
        }
        Some(&mut self.window[idx])
    }

    /// Read-only slot for `instance`, if it is inside the window.
    #[inline]
    fn slot(&self, instance: InstanceId) -> Option<&LearnerSlot> {
        if instance < self.next_deliver {
            return None;
        }
        self.window.get((instance.0 - self.next_deliver.0) as usize)
    }

    /// Highest instance holding a payload or decision (the retransmission
    /// horizon), or `next_deliver` when nothing is buffered — the same
    /// value the previous map representation derived from its max keys.
    fn horizon(&self) -> InstanceId {
        for (off, slot) in self.window.iter().enumerate().rev() {
            if slot.payload.is_some() || slot.decided.is_some() {
                return InstanceId(self.next_deliver.0 + off as u64);
            }
        }
        self.next_deliver
    }
}

/// Proposer-only state.
struct ProposerState {
    pacer: Option<Pacer>,
    next_seq: u64,
    coordinator: NodeId,
    /// Sent but not yet seen delivered (resubmitted on failover).
    unacked: BTreeMap<u64, Value>,
    /// Only proposers that are also learners can prune `unacked`.
    track_acks: bool,
    /// Failover resubmissions still to send, paced so a long outage's
    /// backlog does not burst into the new ring all at once and drown
    /// the recovering 2B relay (tail drop at the coordinator's port).
    resubmit_q: VecDeque<u64>,
}

/// Failover (new coordinator election) state.
struct Takeover {
    round: Round,
    promises: BTreeSet<NodeId>,
    votes: BTreeMap<InstanceId, (Round, Batch)>,
    decided: BTreeSet<InstanceId>,
}

/// Recovery configuration for one M-Ring process: durable vote
/// recording (requires `StorageMode::SyncDisk` — only a write the disk
/// actually completed enters the stable store), learner checkpoints,
/// and bulk TCP catch-up from the preferential acceptor on restart.
pub struct MRecovery {
    /// The node's stable store, shared across process incarnations.
    pub store: StableHandle<Batch>,
    /// Checkpoint every this many delivered instances (0 = never).
    pub checkpoint_interval: u64,
    /// The replicated service hook snapshotted by checkpoints.
    pub app: Option<Box<dyn RecoveredApp>>,
    /// Whether this incarnation replaces a crashed one (respawn).
    pub resumed: bool,
}

/// Live recovery state of one M-Ring process.
struct MRecState {
    store: StableHandle<Batch>,
    ckpt: Option<Checkpointer<Batch>>,
    app: Option<Box<dyn RecoveredApp>>,
    delivered_count: u64,
    catching_up: bool,
    catchup_started: Time,
    /// Delivery position at the previous catch-up tick when a stuck gap
    /// was observed; a gap persisting across two ticks (outliving the
    /// UDP retransmission machinery) re-enters catch-up.
    last_gap: Option<InstanceId>,
}

/// One M-Ring Paxos process; roles derive from its position in the
/// configuration.
pub struct MRingProcess {
    cfg: MRingConfig,
    me: NodeId,
    round: Round,
    coord: Option<CoordState>,
    acc: Option<AccState>,
    lrn: Option<LearnerState>,
    prop: Option<ProposerState>,
    log: Option<SharedLog>,
    takeover: Option<Takeover>,
    total_acceptors: usize,
    /// Live control of the proposer's offered rate (bits/s); experiment
    /// drivers flip it mid-run (Fig. 5.9/5.10 oscillating workloads).
    rate_ctl: Option<Arc<AtomicU64>>,
    /// Live control of the learner's per-batch processing cost
    /// (Fig. 3.14's slow-learner trace).
    cost_ctl: Option<Arc<Mutex<Dur>>>,
    /// Highest GC watermark already applied; re-announcements of the same
    /// watermark (it rides on every 2A) skip the tree-splitting work.
    gc_applied: InstanceId,
    rec: Option<MRecState>,
}

impl MRingProcess {
    /// Creates the process for node `me` under `cfg`. `proposer_rate`
    /// (bits/s) and `proposer_msg_bytes` configure an open-loop proposer
    /// role; `learner_log` enables the learner role and records deliveries.
    pub fn new(
        cfg: MRingConfig,
        me: NodeId,
        proposer: Option<Pacer>,
        learner_log: Option<SharedLog>,
    ) -> MRingProcess {
        // Phase 1 is pre-executed at deployment (§3.2 optimization): all
        // processes start in round 1 owned by the initial coordinator.
        let coord_idx = cfg.ring.len() as u32 - 1;
        let round = Round::new(1, coord_idx);
        let is_coord = cfg.coordinator() == me;
        let in_ring = cfg.ring.contains(&me);
        let is_spare = cfg.spares.contains(&me);
        let learner_index = cfg.learners.iter().position(|&n| n == me);
        let total_acceptors = cfg.ring.len() + cfg.spares.len();

        let coord = is_coord.then(|| CoordState {
            pending: VecDeque::new(),
            pending_bytes: 0,
            next_instance: InstanceId(0),
            outstanding: BTreeMap::new(),
            decided_unsent: Vec::new(),
            window: cfg.flow.initial_window,
            last_slowdown: Time::ZERO,
            last_mcast: Time::ZERO,
            versions: HashMap::new(),
            gc_watermark: InstanceId(0),
            logical_count: 0,
            logical_target: 0,
            last_progress: Time::ZERO,
            repair: None,
        });
        let acc = (in_ring || is_spare).then(|| {
            let mut paxos = Acceptor::new();
            // Pre-promised round 1 (pre-executed Phase 1).
            let _ = paxos.receive_1a(round);
            AccState {
                paxos,
                decided: Window::new(),
                skip_weights: BTreeMap::new(),
                masks: BTreeMap::new(),
                decided_below: InstanceId(0),
                early_2b: Window::new(),
                awaiting_disk: BTreeSet::new(),
                last_coord_activity: Time::ZERO,
            }
        });
        let lrn = learner_index.map(|index| LearnerState {
            index,
            my_mask: cfg.learner_mask(index),
            window: VecDeque::new(),
            next_deliver: InstanceId(0),
            delivered: DeliveredTracker::new(),
            slowdown_active: false,
            applied_reported: InstanceId(0),
            prev_horizon: InstanceId(0),
        });
        let track_acks = learner_index.is_some();
        let prop = proposer.map(|pacer| ProposerState {
            pacer: Some(pacer),
            next_seq: 0,
            coordinator: cfg.coordinator(),
            unacked: BTreeMap::new(),
            resubmit_q: VecDeque::new(),
            track_acks,
        });
        MRingProcess {
            cfg,
            me,
            round,
            coord,
            acc,
            lrn,
            prop,
            log: learner_log,
            takeover: None,
            total_acceptors,
            rate_ctl: None,
            cost_ctl: None,
            gc_applied: InstanceId(0),
            rec: None,
        }
    }

    /// Attaches the recovery subsystem (see [`MRecovery`]). Must be
    /// called before the process is installed. When `rec.resumed`, the
    /// acceptor replays its durable votes and the learner restores its
    /// checkpoint here; catch-up starts in `on_start`. The proposer role
    /// is not resumed (its sequence numbers are not logged).
    pub fn with_recovery(mut self, rec: MRecovery) -> MRingProcess {
        let mut state = MRecState {
            ckpt: (rec.checkpoint_interval > 0)
                .then(|| Checkpointer::new(rec.store.clone(), rec.checkpoint_interval, T_CKPT)),
            app: rec.app,
            delivered_count: 0,
            catching_up: false,
            catchup_started: Time::ZERO,
            last_gap: None,
            store: rec.store,
        };
        if rec.resumed {
            if let Some(a) = self.acc.as_mut() {
                let (promised, votes) = {
                    let s = state.store.lock().unwrap();
                    let votes: Vec<(InstanceId, Round, Batch)> =
                        s.votes.iter().map(|(&i, (r, v))| (i, *r, v.clone())).collect();
                    (s.promised, votes)
                };
                a.paxos = Acceptor::restore(promised.max(self.round), votes);
            }
            let cp = Checkpointer::recover(&state.store).unwrap_or_default();
            if let Some(l) = self.lrn.as_mut() {
                l.next_deliver = cp.watermark;
                l.applied_reported = cp.watermark;
                l.delivered = DeliveredTracker::restore(cp.marks.clone(), cp.parked.clone());
                state.delivered_count = cp.log_pos;
                if let Some(app) = state.app.as_mut() {
                    app.restore(cp.state.as_ref());
                }
                if let Some(log) = self.log.as_ref() {
                    log.lock().unwrap().mark_restart(l.index, cp.log_pos as usize);
                }
                state.catching_up = true;
            }
        }
        self.rec = Some(state);
        self
    }

    /// Attaches a live rate control for this proposer (bits per second;
    /// `0` pauses proposing).
    pub fn with_rate_control(mut self, ctl: Arc<AtomicU64>) -> MRingProcess {
        self.rate_ctl = Some(ctl);
        self
    }

    /// Attaches a live control for the learner's per-batch cost.
    pub fn with_cost_control(mut self, ctl: Arc<Mutex<Dur>>) -> MRingProcess {
        self.cost_ctl = Some(ctl);
        self
    }

    /// Creates a pure proposer role descriptor for deployments.
    pub fn proposer_pacer(rate_bps: u64, msg_bytes: u32, burst: u32) -> Pacer {
        Pacer::new(rate_bps, msg_bytes, burst)
    }

    fn ring_pos(&self) -> Option<usize> {
        self.cfg.ring.iter().position(|&n| n == self.me)
    }

    fn is_coordinator(&self) -> bool {
        self.coord.is_some()
    }

    // ------------------------------------------------------------------
    // Proposer
    // ------------------------------------------------------------------

    fn pace(&mut self, ctx: &mut Ctx) {
        let ctl_rate = self.rate_ctl.as_ref().map(|c| c.load(AtomicOrdering::Relaxed));
        let Some(p) = self.prop.as_mut() else { return };
        let Some(pacer) = p.pacer.as_mut() else { return };
        if let Some(rate) = ctl_rate {
            if rate == 0 {
                // Paused: consume missed slots and re-check shortly.
                let _ = pacer.due(ctx.now());
                ctx.set_timer(Dur::millis(1), TimerToken(T_PACE));
                return;
            }
            pacer.set_rate(rate);
        }
        let due = pacer.due(ctx.now());
        let bytes = pacer.msg_bytes();
        let interval = pacer.interval();
        let coordinator = p.coordinator;
        for _ in 0..due {
            let seq = p.next_seq;
            p.next_seq += 1;
            let v = Value {
                id: MsgId(((self.me.0 as u64) << 40) | seq),
                proposer: self.me,
                seq,
                bytes,
                submitted: ctx.now(),
                mask: ALL_PARTITIONS,
            };
            if p.track_acks {
                p.unacked.insert(seq, v);
            }
            ctx.udp_send(coordinator, MMsg::Propose(v), bytes);
            ctx.counter_add_id(metric::id::PROPOSED, 1);
        }
        ctx.set_timer(interval, TimerToken(T_PACE));
    }

    // ------------------------------------------------------------------
    // Coordinator
    // ------------------------------------------------------------------

    fn on_propose(&mut self, v: Value, src: NodeId, ctx: &mut Ctx) {
        let Some(c) = self.coord.as_mut() else {
            // Not (or no longer) the coordinator. Ring proposers redirect
            // themselves after `NewRing`, but an *external* client (the
            // psmr crate's) only knows the deployment-time coordinator —
            // relay its proposal to the coordinator of the view we hold,
            // so any live member a client guesses is a valid submission
            // point after failover. Proposals relayed by a fellow ring
            // member are dropped instead of re-relayed, so disagreeing
            // views cannot bounce a value around in a loop.
            let coord = self.cfg.coordinator();
            if coord != self.me && !self.cfg.ring.contains(&src) {
                ctx.counter_add("rp.fwd_propose", 1);
                ctx.udp_send(coord, MMsg::Propose(v), v.bytes);
            }
            return;
        };
        if c.pending_bytes + v.bytes as u64 > self.cfg.pending_cap_bytes {
            ctx.counter_add("rp.drop", 1);
            ctx.counter_add("rp.drop_bytes", v.bytes as u64);
            return;
        }
        c.pending.push_back(v);
        c.pending_bytes += v.bytes as u64;
        self.try_flush(ctx, false);
    }

    /// Assembles and multicasts as many full packets as the window allows;
    /// with `force`, also flushes a partial batch (timeout path).
    fn try_flush(&mut self, ctx: &mut Ctx, force: bool) {
        loop {
            let Some(c) = self.coord.as_mut() else { return };
            let window_open = (c.outstanding.len() as u32) < c.window;
            let full = c.pending_bytes >= self.cfg.packet_bytes as u64;
            let partial = force && !c.pending.is_empty();
            let decisions_only = c.pending.is_empty() && !c.decided_unsent.is_empty();

            if window_open && (full || partial) {
                let mut vals = Vec::new();
                let mut bytes = 0u64;
                // Batches are single-mask: a batch is transferred to the
                // groups of the partitions it accesses, so values with
                // different masks go in different batches (§4.2.2).
                let mask = c.pending.front().map(|v| v.mask).unwrap_or(ALL_PARTITIONS);
                while let Some(v) = c.pending.front() {
                    if !vals.is_empty()
                        && (bytes + v.bytes as u64 > self.cfg.packet_bytes as u64 || v.mask != mask)
                    {
                        break;
                    }
                    let v = c.pending.pop_front().expect("front checked");
                    c.pending_bytes -= v.bytes as u64;
                    bytes += v.bytes as u64;
                    vals.push(v);
                }
                // Probe stamp: a PROPOSE span opens at the earliest
                // client submission in the batch (captured before
                // `BatchData::new` consumes the values).
                let first_submitted = if ctx.probes_enabled() {
                    vals.iter().map(|v| v.submitted).min()
                } else {
                    None
                };
                let batch: Batch = BatchData::new(vals);
                let instance = c.next_instance;
                c.next_instance = instance.next();
                c.outstanding.insert(instance, (batch.clone(), ctx.now(), mask));
                c.logical_count += 1;
                let partitioned = self.cfg.partitions.is_some();
                let decisions = if partitioned {
                    Arc::new(Vec::new()) // no piggybacking in partitioned mode
                } else {
                    Arc::new(std::mem::take(&mut c.decided_unsent))
                };
                let gc_upto = c.gc_watermark;
                c.last_mcast = ctx.now();
                // The coordinator votes for its own proposal (it is the
                // last acceptor in the ring).
                if let Some(a) = self.acc.as_mut() {
                    let _ = a.paxos.receive_2a(instance, self.round, batch.clone());
                    if mask != ALL_PARTITIONS {
                        a.masks.insert(instance, mask);
                    }
                }
                ctx.charge_cpu(0, self.cfg.batch_overhead);
                let wire = (bytes.min(u32::MAX as u64) as u32).max(self.cfg.ctl_bytes);
                let decided_below = c.outstanding.keys().next().copied().unwrap_or(instance);
                let msg = MMsg::Phase2a {
                    instance,
                    round: self.round,
                    batch: batch.clone(),
                    decisions: decisions.clone(),
                    gc_upto,
                    skip: 0,
                    mask,
                    decided_below,
                };
                if let Some(at) = first_submitted {
                    let key = probe::span_key(self.cfg.group.0 as u32, instance.0);
                    ctx.probe_at(probe::code::PROPOSE, key, at);
                    ctx.probe(probe::code::PHASE2A, key);
                }
                self.mcast_2a(msg, mask, wire, ctx);
                // Local loop-back when the coordinator is also a learner
                // (multicast does not echo to the sender).
                let round = self.round;
                self.learner_store(instance, &batch, mask, round);
                self.learner_decide(&decisions, round);
                self.try_deliver(ctx);
                continue;
            }
            if decisions_only && force {
                let c = self.coord.as_mut().expect("checked");
                let decisions = Arc::new(std::mem::take(&mut c.decided_unsent));
                let gc_upto = c.gc_watermark;
                c.last_mcast = ctx.now();
                let group = self
                    .cfg
                    .partitions
                    .as_ref()
                    .map(|p| p.decision_group)
                    .unwrap_or(self.cfg.group);
                let round = self.round;
                let decided_below = self.decided_below();
                ctx.mcast(
                    group,
                    MMsg::Decision { instances: decisions.clone(), round, gc_upto, decided_below },
                    self.cfg.ctl_bytes,
                );
                self.learner_decide(&decisions, round);
                self.try_deliver(ctx);
            }
            return;
        }
    }

    /// Multicasts a Phase 2A: once on the classic group, or once per
    /// accessed partition group in partitioned mode (§4.2.2 — acceptors
    /// subscribe to all groups and deduplicate).
    fn mcast_2a(&mut self, msg: MMsg, mask: u32, wire: u32, ctx: &mut Ctx) {
        match self.cfg.partitions.as_ref() {
            None => ctx.mcast(self.cfg.group, msg, wire),
            Some(p) => {
                let payload = Payload::new(msg);
                for (i, &g) in p.groups.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        ctx.mcast_forward(g, payload.clone(), wire);
                    }
                }
            }
        }
    }

    fn on_phase2b(&mut self, instance: InstanceId, round: Round, ctx: &mut Ctx) {
        if round != self.round {
            return;
        }
        if self.is_coordinator() {
            // Quorum complete: every ring acceptor voted, plus ourselves.
            let Some(c) = self.coord.as_mut() else { return };
            if let Some((_, _, mask)) = c.outstanding.remove(&instance) {
                c.last_progress = ctx.now();
                c.decided_unsent.push((instance, mask));
                if let Some(a) = self.acc.as_mut() {
                    a.decided.insert(instance, ());
                }
                ctx.counter_add_id(metric::id::INSTANCES, 1);
                if ctx.probes_enabled() {
                    let key = probe::span_key(self.cfg.group.0 as u32, instance.0);
                    ctx.probe(probe::code::DECIDE, key);
                }
                let round = self.round;
                self.learner_decide(&[(instance, mask)], round);
                self.try_deliver(ctx);
                // Classic mode: decisions ride on the next 2A (or the
                // batch timer flushes them). Partitioned mode: decisions
                // go out promptly on the decision group.
                if self.cfg.partitions.is_some() {
                    self.flush_decisions(ctx);
                } else {
                    self.try_flush(ctx, false);
                }
            }
        } else {
            // Mid-ring acceptor: vote if the 2A was ip-delivered, else hold.
            self.relay_2b(instance, round, ctx);
        }
    }

    /// Partitioned mode: multicasts accumulated decisions on the decision
    /// group once enough have gathered (or via the batch timer).
    fn flush_decisions(&mut self, ctx: &mut Ctx) {
        let Some(p) = self.cfg.partitions.as_ref() else { return };
        let group = p.decision_group;
        let ctl = self.cfg.ctl_bytes;
        let Some(c) = self.coord.as_mut() else { return };
        if c.decided_unsent.is_empty() {
            return;
        }
        let decisions = Arc::new(std::mem::take(&mut c.decided_unsent));
        let gc_upto = c.gc_watermark;
        c.last_mcast = ctx.now();
        let round = self.round;
        let decided_below = self.decided_below();
        ctx.mcast(
            group,
            MMsg::Decision { instances: decisions.clone(), round, gc_upto, decided_below },
            ctl,
        );
        self.learner_decide(&decisions, round);
        self.try_deliver(ctx);
    }

    // ------------------------------------------------------------------
    // Acceptor
    // ------------------------------------------------------------------

    fn on_phase2a(&mut self, instance: InstanceId, round: Round, batch: Batch, ctx: &mut Ctx) {
        if round > self.round {
            // A higher-round coordinator exists: adopt the round and step
            // down if we (stale, e.g. restarted after a pause) still
            // believe we coordinate.
            self.round = round;
            self.persist_promise(round);
            self.coord = None;
            self.takeover = None;
        }
        let is_first = self.ring_pos() == Some(0);
        let Some(a) = self.acc.as_mut() else { return };
        a.last_coord_activity = ctx.now();
        if round != self.round || self.cfg.coordinator() == self.me {
            return;
        }
        // Partitioned mode replicates one 2A onto several groups; an
        // acceptor subscribed to all of them deduplicates (§4.2.2). A
        // duplicate can also be the coordinator *retransmitting* after a
        // lost Phase 2B — the first acceptor must restart the vote relay.
        if a.paxos.vote(instance).is_some_and(|v| v.v_rnd == round) {
            let disk_ok = !a.awaiting_disk.contains(&instance);
            if is_first && disk_ok {
                self.send_2b_to_successor(instance, round, ctx);
            }
            return;
        }
        let batch_wire_bytes = batch_bytes(&batch).min(u32::MAX as u64) as u32;
        if a.paxos.receive_2a(instance, round, batch).is_none() {
            return;
        }
        match self.cfg.storage {
            StorageMode::InMemory => {
                self.after_vote_durable(instance, round, is_first, ctx);
            }
            StorageMode::SyncDisk => {
                let bytes = batch_wire_bytes;
                let a = self.acc.as_mut().expect("acceptor");
                a.awaiting_disk.insert(instance);
                ctx.disk_write_coalesced(
                    bytes,
                    self.cfg.disk_unit,
                    TimerToken(T_DISK | instance.0),
                );
            }
            StorageMode::AsyncDisk => {
                // Fire-and-forget write; throttle if the disk lags.
                let bytes = batch_wire_bytes;
                ctx.disk_write_coalesced(
                    bytes,
                    self.cfg.disk_unit,
                    TimerToken(T_VOTE_RETRY | u64::MAX >> 8),
                );
                if ctx.disk_backlog() > Dur::millis(20) {
                    // Delay the vote until the disk catches up a little.
                    let wait = ctx.disk_backlog() - Dur::millis(20);
                    let first_flag = if is_first { 1u64 << 55 } else { 0 };
                    ctx.set_timer(wait, TimerToken(T_VOTE_RETRY | first_flag | instance.0));
                } else {
                    self.after_vote_durable(instance, round, is_first, ctx);
                }
            }
        }
    }

    /// Runs once the vote for `instance` is durable (per storage mode):
    /// first acceptor starts the 2B relay; others release a buffered 2B.
    fn after_vote_durable(
        &mut self,
        instance: InstanceId,
        round: Round,
        is_first: bool,
        ctx: &mut Ctx,
    ) {
        if is_first {
            self.send_2b_to_successor(instance, round, ctx);
            return;
        }
        let Some(a) = self.acc.as_mut() else { return };
        if let Some(r) = a.early_2b.remove(instance) {
            if r == round {
                self.send_2b_to_successor(instance, round, ctx);
            }
        }
    }

    /// Handles a 2B arriving from the ring predecessor at a mid-ring
    /// acceptor: forward only if we have ip-delivered (and voted for) the
    /// corresponding 2A — the heart of Task 5 in Algorithm 2.
    fn relay_2b(&mut self, instance: InstanceId, round: Round, ctx: &mut Ctx) {
        let Some(a) = self.acc.as_mut() else { return };
        let voted = a.paxos.vote(instance).is_some_and(|v| v.v_rnd == round);
        let disk_ok = !a.awaiting_disk.contains(&instance);
        if voted && disk_ok {
            self.send_2b_to_successor(instance, round, ctx);
        } else {
            a.early_2b.insert(instance, round);
        }
    }

    fn send_2b_to_successor(&mut self, instance: InstanceId, round: Round, ctx: &mut Ctx) {
        if ctx.probes_enabled() {
            ctx.probe(probe::code::PHASE2B, probe::span_key(self.cfg.group.0 as u32, instance.0));
        }
        if let Some(succ) = self.cfg.successor(self.me) {
            ctx.udp_send(succ, MMsg::Phase2b { instance, round }, self.cfg.ctl_bytes);
        }
    }

    fn on_retrans_req(&mut self, from: NodeId, instances: &[InstanceId], ctx: &mut Ctx) {
        let Some(a) = self.acc.as_ref() else { return };
        let mut replies = Vec::new();
        for &i in instances {
            if let Some(vote) = a.paxos.vote(i) {
                let skip = a.skip_weights.get(&i).copied().unwrap_or(0);
                let mask = a.masks.get(&i).copied().unwrap_or(ALL_PARTITIONS);
                let decided = a.decided.contains(i) || i < a.decided_below;
                replies.push((i, vote.v_val.clone(), decided, vote.v_rnd, skip, mask));
            }
        }
        for (instance, batch, decided, round, skip, mask) in replies {
            let wire = batch_bytes(&batch).min(u32::MAX as u64) as u32;
            ctx.counter_add("rp.retrans", 1);
            ctx.udp_send(
                from,
                MMsg::RetransRep { instance, batch, decided, round, skip, mask },
                wire.max(self.cfg.ctl_bytes),
            );
        }
    }

    // ------------------------------------------------------------------
    // Learner
    // ------------------------------------------------------------------

    fn learner_store(&mut self, instance: InstanceId, batch: &Batch, mask: u32, round: Round) {
        if let Some(l) = self.lrn.as_mut() {
            if mask & l.my_mask != 0 {
                if let Some(slot) = l.slot_mut(instance) {
                    match &slot.payload {
                        Some((r, _)) if *r >= round => {}
                        _ => slot.payload = Some((round, batch.clone())),
                    }
                }
            }
        }
    }

    fn learner_decide(&mut self, instances: &[(InstanceId, u32)], round: Round) {
        if let Some(l) = self.lrn.as_mut() {
            let my_mask = l.my_mask;
            for &(i, mask) in instances {
                if let Some(slot) = l.slot_mut(i) {
                    if mask & my_mask == 0 {
                        // Another partition's instance: skip over it.
                        slot.foreign = true;
                    } else {
                        slot.decided = Some(slot.decided.map_or(round, |e| e.max(round)));
                    }
                }
            }
        }
    }

    /// Authoritative decision from an acceptor's stored (decided) vote:
    /// pins both payload and decision to the vote's round.
    fn learner_authoritative(&mut self, instance: InstanceId, batch: &Batch, round: Round) {
        if let Some(l) = self.lrn.as_mut() {
            if let Some(slot) = l.slot_mut(instance) {
                slot.payload = Some((round, batch.clone()));
                slot.decided = Some(round);
            }
        }
    }

    fn try_deliver(&mut self, ctx: &mut Ctx) {
        let batch_cost = self
            .cost_ctl
            .as_ref()
            .map(|c| *c.lock().unwrap())
            .unwrap_or(self.cfg.learner_batch_cost);
        loop {
            let Some(l) = self.lrn.as_mut() else { return };
            let next = l.next_deliver;
            let Some(front) = l.window.front() else { break };
            if front.foreign {
                // Not our partition: advance without delivering (§4.2.2).
                l.window.pop_front();
                l.next_deliver = next.next();
                continue;
            }
            // Deliver only when the payload's round matches the deciding
            // round (the paper's value-id check): a payload from a
            // deposed coordinator never masquerades as the decided value.
            if !front.ready() {
                break;
            }
            if batch_cost > Dur::ZERO {
                // Application processing runs on core 1 (a pinned thread);
                // if it falls far behind, pause and resume by timer so the
                // buffer build-up is observable (flow control, §3.3.6).
                let backlog = ctx.core_free_at(1).saturating_since(ctx.now());
                if backlog > Dur::millis(5) {
                    ctx.set_timer(backlog - Dur::millis(4), TimerToken(T_DELIVER));
                    break;
                }
                ctx.charge_cpu(1, batch_cost);
            }
            let l = self.lrn.as_mut().expect("learner");
            let slot = l.window.pop_front().expect("front checked");
            let (_, batch) = slot.payload.expect("payload checked");
            l.next_deliver = next.next();
            let index = l.index;
            if ctx.probes_enabled() {
                ctx.probe(probe::code::DELIVER, probe::span_key(self.cfg.group.0 as u32, next.0));
            }
            let mut delivered_here = Vec::new();
            for v in batch.iter() {
                if !l.delivered.fresh(v.proposer, v.seq) {
                    continue; // duplicate after failover resubmission
                }
                delivered_here.push(*v);
            }
            if let Some(log) = self.log.as_ref() {
                let mut log = log.lock().unwrap();
                for v in &delivered_here {
                    log.deliver(index, v.id);
                }
            }
            if let Some(rec) = self.rec.as_mut() {
                rec.delivered_count += delivered_here.len() as u64;
                if let Some(app) = rec.app.as_mut() {
                    for v in &delivered_here {
                        app.apply(v.proposer.0 as u64, v.seq, v.bytes);
                    }
                }
            }
            for v in &delivered_here {
                ctx.counter_add_id(metric::id::DELIVERED_BYTES, v.bytes as u64);
                ctx.counter_add_id(metric::id::DELIVERED_MSGS, 1);
                if v.proposer == self.me {
                    // Delivery strictly follows submission; `since`
                    // debug-asserts that instead of masking inversions.
                    ctx.record_latency(metric::LATENCY, ctx.now().since(v.submitted));
                    if let Some(p) = self.prop.as_mut() {
                        p.unacked.remove(&v.seq);
                    }
                }
            }
        }
        self.maybe_checkpoint(ctx);
        self.flow_check(ctx);
    }

    /// Starts a checkpoint when one is due (recovery-enabled learners).
    fn maybe_checkpoint(&mut self, ctx: &mut Ctx) {
        let Some(rec) = self.rec.as_mut() else { return };
        let Some(ckpt) = rec.ckpt.as_mut() else { return };
        let Some(l) = self.lrn.as_ref() else { return };
        if !ckpt.due(l.next_deliver) {
            return;
        }
        let (marks, parked) = l.delivered.export();
        let app = &mut rec.app;
        ckpt.maybe_checkpoint(
            l.next_deliver,
            rec.delivered_count,
            marks,
            parked,
            || match app {
                Some(a) => a.snapshot(),
                None => (CKPT_META_BYTES, None),
            },
            ctx,
        );
    }

    /// Serves a recovery catch-up request from the acceptor's stored
    /// votes: contiguous decided instances from `next`, over TCP. When
    /// `next` has fallen below this acceptor's GC watermark, the reply's
    /// `available_from` tells the requester to fetch a peer learner's
    /// checkpoint first.
    fn serve_catchup(&mut self, from: NodeId, next: InstanceId, ctx: &mut Ctx) {
        let Some(a) = self.acc.as_ref() else { return };
        let horizon = a
            .decided
            .iter()
            .map(|(i, _)| i.next())
            .last()
            .unwrap_or(InstanceId(0))
            .max(a.decided_below);
        let available_from = a.paxos.gc_base().max(next);
        let mut batches = Vec::new();
        let mut wire = self.cfg.ctl_bytes as u64;
        let mut i = available_from;
        while batches.len() < CATCHUP_CHUNK && i < horizon {
            let decided = a.decided.contains(i) || i < a.decided_below;
            let Some(vote) = a.paxos.vote(i) else { break };
            if !decided {
                break;
            }
            let skip = a.skip_weights.get(&i).copied().unwrap_or(0);
            let mask = a.masks.get(&i).copied().unwrap_or(ALL_PARTITIONS);
            wire += batch_bytes(&vote.v_val);
            batches.push((i, vote.v_val.clone(), vote.v_rnd, skip, mask));
            i = i.next();
        }
        ctx.counter_add("rec.catchup_served", batches.len() as u64);
        ctx.tcp_send(
            from,
            MMsg::CatchupRep { batches, upto: horizon, available_from },
            wire.min(u32::MAX as u64) as u32,
        );
    }

    /// A peer learner in this deployment other than `me` (the state
    /// transfer source when acceptors have GC'd past a straggler).
    fn snap_peer(&self) -> Option<NodeId> {
        self.cfg.learners.iter().copied().find(|&n| n != self.me)
    }

    /// Ingests a recovery catch-up chunk at a restarted learner.
    fn on_catchup_rep(
        &mut self,
        batches: Vec<(InstanceId, Batch, Round, u64, u32)>,
        upto: InstanceId,
        available_from: InstanceId,
        ctx: &mut Ctx,
    ) {
        let catching = self.rec.as_ref().is_some_and(|r| r.catching_up);
        if !catching {
            return; // a retry's duplicate reply after completion
        }
        let next_now = self.lrn.as_ref().map(|l| l.next_deliver).unwrap_or(InstanceId(0));
        if available_from > next_now {
            // The acceptors collected past us (§3.3.7): only a peer
            // learner's checkpoint can close the gap. Stay catching up;
            // re-request once the transfer lands (or on the retry tick).
            if let Some(peer) = self.snap_peer() {
                let me = self.me;
                ctx.counter_add("rec.snap_reqs", 1);
                ctx.tcp_send(peer, MMsg::SnapReq { from: me }, self.cfg.ctl_bytes);
            }
            return;
        }
        let got = batches.len() as u64;
        ctx.counter_add("rec.catchup_instances", got);
        let my_mask = self.lrn.as_ref().map(|l| l.my_mask).unwrap_or(ALL_PARTITIONS);
        for (instance, batch, round, _skip, mask) in batches {
            if mask & my_mask == 0 {
                self.learner_decide(&[(instance, mask)], round);
            } else {
                self.learner_authoritative(instance, &batch, round);
            }
        }
        self.try_deliver(ctx);
        let next = self.lrn.as_ref().map(|l| l.next_deliver).unwrap_or(upto);
        let rec = self.rec.as_mut().expect("checked above");
        if next >= upto {
            rec.catching_up = false;
            let took = ctx.now().since(rec.catchup_started);
            ctx.record_latency("rec.ttr", took);
        } else if got > 0 {
            let index = self.lrn.as_ref().map(|l| l.index).unwrap_or(0);
            let pref = self.cfg.preferential_acceptor(index);
            let me = self.me;
            ctx.tcp_send(pref, MMsg::CatchupReq { from: me, next }, self.cfg.ctl_bytes);
        }
        // `got == 0` below the horizon: the acceptor could not serve
        // contiguously (e.g. mid-GC); the T_CATCHUP retry re-asks.
    }

    /// Adopts a peer learner's checkpoint (state transfer): jump the
    /// delivery window to its watermark and resume catch-up from there.
    fn on_snap_rep(&mut self, snap: Option<recovery::Checkpoint>, ctx: &mut Ctx) {
        if !self.rec.as_ref().is_some_and(|r| r.catching_up) {
            return;
        }
        let Some(cp) = snap else { return };
        let Some(l) = self.lrn.as_mut() else { return };
        if cp.watermark <= l.next_deliver {
            return; // the peer is not ahead (yet); the retry tick re-asks
        }
        let jump = (cp.watermark.0 - l.next_deliver.0) as usize;
        for _ in 0..jump.min(l.window.len()) {
            l.window.pop_front();
        }
        l.next_deliver = cp.watermark;
        l.applied_reported = cp.watermark;
        l.delivered = DeliveredTracker::restore(cp.marks.clone(), cp.parked.clone());
        let index = l.index;
        if let Some(rec) = self.rec.as_mut() {
            rec.delivered_count = cp.log_pos;
            if let Some(app) = rec.app.as_mut() {
                app.restore(cp.state.as_ref());
            }
        }
        if let Some(log) = self.log.as_ref() {
            log.lock().unwrap().mark_state_transfer(index, cp.log_pos as usize);
        }
        ctx.counter_add("rec.state_transfers", 1);
        ctx.counter_add("rec.transfer_bytes", cp.state_bytes);
        let next = cp.watermark;
        let pref = self.cfg.preferential_acceptor(index);
        let me = self.me;
        ctx.tcp_send(pref, MMsg::CatchupReq { from: me, next }, self.cfg.ctl_bytes);
        self.try_deliver(ctx);
    }

    /// Buffered (ready but unprocessed) instances at this learner:
    /// consecutive instances from the delivery point that hold both
    /// payload and decision but have not been handed to the application.
    fn learner_buffered(&self) -> u32 {
        // Cap the scan just past the flow-control threshold: callers only
        // need to know which side of the threshold we are on, and an
        // overloaded learner may buffer hundreds of thousands of
        // instances (scanning them per event would be quadratic).
        let cap = self.cfg.flow.learner_threshold.saturating_mul(2).max(16);
        let Some(l) = self.lrn.as_ref() else { return 0 };
        let mut n = 0;
        for slot in l.window.iter() {
            if n >= cap || !slot.ready() {
                break;
            }
            n += 1;
        }
        n
    }

    fn flow_check(&mut self, ctx: &mut Ctx) {
        let buffered = self.learner_buffered();
        let threshold = self.cfg.flow.learner_threshold;
        let Some(l) = self.lrn.as_mut() else { return };
        let index = l.index;
        if buffered > threshold && !l.slowdown_active {
            l.slowdown_active = true;
            let pref = self.cfg.preferential_acceptor(index);
            ctx.counter_add("rp.slowdown", 1);
            ctx.udp_send(pref, MMsg::SlowDown, self.cfg.ctl_bytes);
        } else if buffered < threshold / 2 {
            l.slowdown_active = false;
        }
    }

    fn gc_report(&mut self, ctx: &mut Ctx) {
        let Some(l) = self.lrn.as_mut() else { return };
        let applied = l.next_deliver;
        if applied > l.applied_reported {
            l.applied_reported = applied;
            let pref = self.cfg.preferential_acceptor(l.index);
            let me = self.me;
            ctx.udp_send(pref, MMsg::Version { learner: me, applied }, self.cfg.ctl_bytes);
        }
        ctx.set_timer(self.cfg.gc_interval, TimerToken(T_GC));
    }

    fn retrans_check(&mut self, ctx: &mut Ctx) {
        let Some(l) = self.lrn.as_mut() else { return };
        let horizon = l.horizon();
        // Only instances already visible at the previous check are fair
        // game: anything newer is most likely still in flight.
        let stale_horizon = l.prev_horizon.min(horizon);
        let mut missing = Vec::new();
        for i in l.next_deliver.0..stale_horizon.0 {
            let i = InstanceId(i);
            let slot = l.slot(i);
            let ready = slot.is_some_and(|s| s.ready());
            let foreign = slot.is_some_and(|s| s.foreign);
            if !ready && !foreign {
                missing.push(i);
            }
            if missing.len() >= 64 {
                break;
            }
        }
        l.prev_horizon = horizon;
        let l = self.lrn.as_ref().expect("learner");
        if !missing.is_empty() {
            let pref = self.cfg.preferential_acceptor(l.index);
            let me = self.me;
            ctx.udp_send(
                pref,
                MMsg::RetransReq { from: me, instances: missing },
                self.cfg.ctl_bytes,
            );
        }
        ctx.set_timer(Dur::millis(20), TimerToken(T_RETRANS));
    }

    // ------------------------------------------------------------------
    // Garbage collection (coordinator side)
    // ------------------------------------------------------------------

    fn on_version(&mut self, learner: NodeId, applied: InstanceId, ctx: &mut Ctx) {
        if self.is_coordinator() {
            let n_learners = self.cfg.learners.len();
            let f_plus_1 = quorum(self.total_acceptors).min(n_learners.max(1));
            let Some(c) = self.coord.as_mut() else { return };
            let e = c.versions.entry(learner).or_insert(InstanceId(0));
            *e = (*e).max(applied);
            if c.versions.len() >= f_plus_1 {
                let mut versions: Vec<InstanceId> = c.versions.values().copied().collect();
                versions.sort_unstable();
                // The f+1-th highest version is safe to collect below —
                // minus a retention window so learners lagging behind
                // that quorum keep a retransmission source (§3.3.7's
                // catch-up from "a sufficiently recent" peer).
                let idx = versions.len() - f_plus_1;
                let watermark = InstanceId(versions[idx].0.saturating_sub(self.cfg.gc_retention));
                if watermark > c.gc_watermark {
                    let delta = watermark.0 - c.gc_watermark.0;
                    c.gc_watermark = watermark;
                    ctx.counter_add("rp.gc_advanced", delta);
                    self.apply_gc(watermark);
                }
            }
        } else if self.acc.is_some() {
            // Forward along the ring towards the coordinator.
            if let Some(succ) = self.cfg.successor(self.me) {
                ctx.udp_send(succ, MMsg::Version { learner, applied }, self.cfg.ctl_bytes);
            }
        }
    }

    fn apply_gc(&mut self, upto: InstanceId) {
        // The watermark rides on every 2A; splitting the trees again for
        // an unchanged watermark is pure waste on the per-packet path.
        if upto <= self.gc_applied {
            return;
        }
        self.gc_applied = upto;
        if let Some(a) = self.acc.as_mut() {
            a.paxos.gc_below(upto);
            a.decided.advance_base(upto);
            a.early_2b.advance_base(upto);
            a.skip_weights = a.skip_weights.split_off(&upto);
            a.masks = a.masks.split_off(&upto);
            // The durable vote log rides the same watermark: f+1
            // learners applied these instances (§3.3.7), so a restarted
            // acceptor never needs them either — without this trim the
            // stable store grows with run length.
            if let Some(rec) = self.rec.as_ref() {
                rec.store.lock().unwrap().trim_votes_below(upto);
            }
        }
    }

    // ------------------------------------------------------------------
    // Failover (§3.3.5)
    // ------------------------------------------------------------------

    // ------------------------------------------------------------------
    // Ring repair (§3.3.4/§3.3.5): the coordinator suspects a broken 2B
    // relay, probes the acceptors, and lays out a new ring from the
    // responders, pulling in spares to restore the m-quorum.
    // ------------------------------------------------------------------

    fn ring_repair_check(&mut self, ctx: &mut Ctx) {
        enum Action {
            Nothing,
            Probe,
            Reform,
        }
        let timeout = self.cfg.suspicion_timeout;
        let now = ctx.now();
        let action = {
            let Some(c) = self.coord.as_ref() else { return };
            match c.repair.as_ref() {
                Some(r) if now.saturating_since(r.started) >= timeout / 2 => Action::Reform,
                Some(_) => Action::Nothing,
                None if !c.outstanding.is_empty()
                    && now.saturating_since(c.last_progress) > timeout =>
                {
                    Action::Probe
                }
                None => Action::Nothing,
            }
        };
        match action {
            Action::Nothing => {}
            Action::Probe => self.start_ring_probe(ctx),
            Action::Reform => self.reform_ring(ctx),
        }
    }

    fn start_ring_probe(&mut self, ctx: &mut Ctx) {
        let me = self.me;
        let targets: Vec<NodeId> = self
            .cfg
            .ring
            .iter()
            .chain(self.cfg.spares.iter())
            .copied()
            .filter(|&n| n != me)
            .collect();
        if let Some(c) = self.coord.as_mut() {
            let mut responders = BTreeSet::new();
            responders.insert(me);
            c.repair = Some(RepairState { responders, started: ctx.now() });
        }
        ctx.counter_add("rp.ring_probe", 1);
        for t in targets {
            ctx.udp_send(t, MMsg::Ping { from: me }, self.cfg.ctl_bytes);
        }
    }

    fn reform_ring(&mut self, ctx: &mut Ctx) {
        let me = self.me;
        let responders = {
            let Some(c) = self.coord.as_mut() else { return };
            let Some(r) = c.repair.take() else { return };
            c.last_progress = ctx.now();
            r.responders
        };
        // Keep the surviving ring segment in order, then pull in live
        // spares until the ring again holds an m-quorum (§3.3.5).
        let mut ring: Vec<NodeId> =
            self.cfg.ring.iter().copied().filter(|&n| n != me && responders.contains(&n)).collect();
        let target = quorum(self.total_acceptors).saturating_sub(1);
        for s in self.cfg.spares.clone() {
            if ring.len() >= target {
                break;
            }
            if s != me && responders.contains(&s) && !ring.contains(&s) {
                ring.push(s);
            }
        }
        ring.push(me);
        if ring == self.cfg.ring {
            return; // nothing to exclude — the stall was transient
        }
        if ring.len() < quorum(self.total_acceptors) {
            // Cannot gather an m-quorum: keep the old ring, retry later.
            ctx.counter_add("rp.repair_short", 1);
            return;
        }
        // Demote excluded members to spares (a restarted acceptor can
        // answer a later probe and rejoin).
        for &old in &self.cfg.ring.clone() {
            if !ring.contains(&old) && !self.cfg.spares.contains(&old) {
                self.cfg.spares.push(old);
            }
        }
        self.cfg.spares.retain(|s| !ring.contains(s));
        self.cfg.ring = ring.clone();
        ctx.counter_add("rp.ring_repair", 1);
        let round = self.round;
        ctx.mcast(self.cfg.group, MMsg::NewRing { round, coord: me, ring }, self.cfg.ctl_bytes);
        // Restart the 2B relay for everything in flight: re-multicast the
        // outstanding 2As — the duplicate-2A path makes the new first
        // acceptor restart the vote relay.
        let outstanding: Vec<(InstanceId, Batch, u32)> = {
            let Some(c) = self.coord.as_mut() else { return };
            c.outstanding
                .iter_mut()
                .map(|(&i, entry)| {
                    entry.1 = ctx.now();
                    (i, entry.0.clone(), entry.2)
                })
                .collect()
        };
        let decided_below = self.decided_below();
        let ctl = self.cfg.ctl_bytes;
        for (instance, batch, mask) in outstanding {
            let wire = (batch_bytes(&batch).min(u32::MAX as u64) as u32).max(ctl);
            let skip = self.skip_weight_of(instance);
            let msg = MMsg::Phase2a {
                instance,
                round,
                batch,
                decisions: Arc::new(Vec::new()),
                gc_upto: InstanceId(0),
                skip,
                mask,
                decided_below,
            };
            self.mcast_2a(msg, mask, wire, ctx);
        }
    }

    /// The skip weight this (coordinator-)acceptor recorded for
    /// `instance` (0 for normal batches) — retransmitted 2As must repeat
    /// it verbatim so every learner's merge sees identical weights.
    fn skip_weight_of(&self, instance: InstanceId) -> u64 {
        self.acc.as_ref().and_then(|a| a.skip_weights.get(&instance)).copied().unwrap_or(0)
    }

    fn suspect_check(&mut self, ctx: &mut Ctx) {
        let timeout = self.cfg.suspicion_timeout;
        let Some(pos) = self.ring_pos() else { return };
        if self.is_coordinator() || self.takeover.is_some() {
            return;
        }
        let silent = {
            let Some(a) = self.acc.as_ref() else { return };
            ctx.now().saturating_since(a.last_coord_activity)
        };
        // Staggered takeover: ring position 0 reacts first, position 1
        // after another timeout, and so on — avoids duelling candidates.
        let my_delay = timeout + timeout * pos as u64;
        if silent > my_delay {
            self.start_takeover(ctx);
        } else {
            ctx.set_timer(timeout, TimerToken(T_SUSPECT));
        }
    }

    fn start_takeover(&mut self, ctx: &mut Ctx) {
        let pos = self.ring_pos().unwrap_or(0) as u32;
        self.round = self.round.next_for(pos);
        let round = self.round;
        self.takeover = Some(Takeover {
            round,
            promises: BTreeSet::new(),
            votes: BTreeMap::new(),
            decided: BTreeSet::new(),
        });
        ctx.counter_add("rp.takeover", 1);
        let me = self.me;
        // Phase 1A to every acceptor (ring + spares), including ourselves.
        let targets: Vec<NodeId> = self
            .cfg
            .ring
            .iter()
            .chain(self.cfg.spares.iter())
            .copied()
            .filter(|&n| n != me)
            .collect();
        for t in targets {
            ctx.udp_send(t, MMsg::Phase1a { round, from: me }, self.cfg.ctl_bytes);
        }
        // Self-promise.
        let self_votes = self.collect_own_votes(round);
        self.on_phase1b(round, me, self_votes.0, self_votes.1, ctx);
        // Retry suspicion in case the takeover stalls (lost messages).
        ctx.set_timer(self.cfg.suspicion_timeout * 4, TimerToken(T_SUSPECT));
    }

    /// Persists a promised/adopted round (recovery-enabled acceptors):
    /// a restarted acceptor must not vote in a round it promised away.
    /// Promise writes are control-sized and rare; their disk time is
    /// folded into the next vote flush (see `recovery::stable`).
    fn persist_promise(&self, round: Round) {
        if self.acc.is_some() {
            if let Some(rec) = self.rec.as_ref() {
                rec.store.lock().unwrap().log_promise(round);
            }
        }
    }

    fn collect_own_votes(
        &mut self,
        round: Round,
    ) -> (Vec<(InstanceId, Round, Batch)>, Vec<InstanceId>) {
        self.persist_promise(round);
        let Some(a) = self.acc.as_mut() else { return (Vec::new(), Vec::new()) };
        match a.paxos.receive_1a(round) {
            Some(paxos::msg::PaxosMsg::Phase1b { votes, .. }) => {
                (votes, a.decided.iter().map(|(i, _)| i).collect())
            }
            _ => (Vec::new(), a.decided.iter().map(|(i, _)| i).collect()),
        }
    }

    fn on_phase1a(&mut self, round: Round, from: NodeId, ctx: &mut Ctx) {
        if round > self.round {
            self.round = round;
            self.persist_promise(round);
            // Abandon any personal takeover attempt against a higher round.
            if self.takeover.as_ref().is_some_and(|t| t.round < round) {
                self.takeover = None;
            }
            // Deposed coordinator stops proposing.
            if self.coord.is_some() && self.cfg.coordinator() == self.me {
                self.coord = None;
            }
            let (votes, decided) = self.collect_own_votes(round);
            let me = self.me;
            let wire = self.cfg.ctl_bytes
                + votes.iter().map(|(_, _, b)| batch_bytes(b) as u32).sum::<u32>();
            ctx.udp_send(from, MMsg::Phase1b { round, from: me, votes, decided }, wire);
        }
    }

    fn on_phase1b(
        &mut self,
        round: Round,
        from: NodeId,
        votes: Vec<(InstanceId, Round, Batch)>,
        decided: Vec<InstanceId>,
        ctx: &mut Ctx,
    ) {
        let total = self.total_acceptors;
        let Some(t) = self.takeover.as_mut() else { return };
        if t.round != round {
            return;
        }
        if !t.promises.insert(from) {
            return;
        }
        for (i, r, b) in votes {
            match t.votes.get(&i) {
                Some((vr, _)) if *vr >= r => {}
                _ => {
                    t.votes.insert(i, (r, b));
                }
            }
        }
        t.decided.extend(decided);
        if t.promises.len() >= quorum(total) {
            self.become_coordinator(ctx);
        }
    }

    fn become_coordinator(&mut self, ctx: &mut Ctx) {
        let t = self.takeover.take().expect("takeover in progress");
        // Reform the ring: alive members we can't verify, so keep the old
        // ring minus the old coordinator, with ourselves last.
        let old_coord = self.cfg.coordinator();
        let mut ring: Vec<NodeId> =
            self.cfg.ring.iter().copied().filter(|&n| n != old_coord && n != self.me).collect();
        // Keep the ring at quorum size by pulling in spares (they have
        // been receiving 2As all along — Cheap Paxos style, §3.3.2).
        let needed = quorum(self.total_acceptors).saturating_sub(1);
        for &s in &self.cfg.spares {
            if ring.len() >= needed {
                break;
            }
            if !ring.contains(&s) && s != self.me {
                ring.push(s);
            }
        }
        ring.push(self.me);
        self.cfg.ring = ring.clone();
        self.cfg.spares.retain(|s| !ring.contains(s));
        let round = t.round;
        self.round = round;

        // Resume after the highest instance seen anywhere.
        let max_seen = t
            .votes
            .keys()
            .next_back()
            .copied()
            .max(t.decided.iter().next_back().copied())
            .map(|i| i.next())
            .unwrap_or(InstanceId(0));

        let mut cs = CoordState {
            pending: VecDeque::new(),
            pending_bytes: 0,
            next_instance: max_seen,
            outstanding: BTreeMap::new(),
            decided_unsent: t.decided.iter().map(|&i| (i, ALL_PARTITIONS)).collect(),
            window: self.cfg.flow.initial_window,
            last_slowdown: Time::ZERO,
            last_mcast: ctx.now(),
            versions: HashMap::new(),
            gc_watermark: InstanceId(0),
            logical_count: 0,
            logical_target: 0,
            last_progress: ctx.now(),
            repair: None,
        };

        // Re-propose undecided revealed votes (value pick rule).
        let mut repropose: Vec<(InstanceId, Batch)> = Vec::new();
        for (i, (_r, b)) in &t.votes {
            if !t.decided.contains(i) {
                repropose.push((*i, b.clone()));
            }
        }

        for (instance, batch) in &repropose {
            cs.outstanding.insert(*instance, (batch.clone(), ctx.now(), ALL_PARTITIONS));
        }
        self.coord = Some(cs);

        ctx.counter_add("rp.became_coord", 1);
        ctx.mcast(
            self.cfg.group,
            MMsg::NewRing { round, coord: self.me, ring },
            self.cfg.ctl_bytes,
        );
        // Re-run Phase 2 for the re-proposed instances.
        for (instance, batch) in repropose {
            if let Some(a) = self.acc.as_mut() {
                let _ = a.paxos.receive_2a(instance, round, batch.clone());
            }
            let wire = batch_bytes(&batch).min(u32::MAX as u64) as u32;
            ctx.mcast(
                self.cfg.group,
                MMsg::Phase2a {
                    instance,
                    round,
                    batch,
                    decisions: Arc::new(Vec::new()),
                    gc_upto: InstanceId(0),
                    skip: 0,
                    mask: ALL_PARTITIONS,
                    decided_below: InstanceId(0),
                },
                wire.max(self.cfg.ctl_bytes),
            );
        }
        // Start coordinator timers.
        ctx.set_timer(self.cfg.batch_timeout, TimerToken(T_BATCH));
        ctx.set_timer(Dur::millis(100), TimerToken(T_FLOW));
        ctx.set_timer(self.cfg.suspicion_timeout / 2, TimerToken(T_HEARTBEAT));
        if let Some(skip) = self.cfg.skip {
            ctx.set_timer(skip.delta, TimerToken(T_SKIP));
        }
    }

    fn on_new_ring(&mut self, round: Round, coord: NodeId, ring: Vec<NodeId>, ctx: &mut Ctx) {
        if round < self.round {
            return;
        }
        self.round = round;
        self.persist_promise(round);
        self.cfg.ring = ring;
        if coord != self.me {
            self.coord = None;
            self.takeover = None;
        }
        if let Some(a) = self.acc.as_mut() {
            a.last_coord_activity = ctx.now();
        }
        // Proposers redirect and resubmit anything unacknowledged —
        // paced (T_RESUB), not burst: after a long outage the combined
        // backlog of all proposers can exceed the switch port buffer and
        // the drops would take out the recovering ring's 2B relay.
        if let Some(p) = self.prop.as_mut() {
            p.coordinator = coord;
            p.resubmit_q = p.unacked.keys().copied().collect();
            if !p.resubmit_q.is_empty() {
                ctx.set_timer(Dur::ZERO, TimerToken(T_RESUB));
            }
        }
    }

    /// Drains a slice of the failover resubmission queue (~512 Mbps).
    fn drain_resubmits(&mut self, ctx: &mut Ctx) {
        let mut send = Vec::new();
        let more = {
            let Some(p) = self.prop.as_mut() else { return };
            for _ in 0..16 {
                let Some(seq) = p.resubmit_q.pop_front() else { break };
                // Skip anything acknowledged while queued.
                if let Some(v) = p.unacked.get(&seq) {
                    send.push((p.coordinator, *v));
                }
            }
            !p.resubmit_q.is_empty()
        };
        for (coord, v) in send {
            ctx.udp_send(coord, MMsg::Propose(v), v.bytes);
            ctx.counter_add("rp.resubmit", 1);
        }
        if more {
            ctx.set_timer(Dur::millis(2), TimerToken(T_RESUB));
        }
    }
}

impl MRingProcess {
    /// Lowest instance the coordinator has not yet decided: everything
    /// below it is decided.
    fn decided_below(&self) -> InstanceId {
        self.coord
            .as_ref()
            .map(|c| c.outstanding.keys().next().copied().unwrap_or(c.next_instance))
            .unwrap_or(InstanceId(0))
    }

    /// Proposes one consensus instance that stands for `weight` skipped
    /// logical instances (Multi-Ring Paxos, ch. 5). Many skips cost one
    /// consensus execution and a ~`ctl_bytes` message.
    fn propose_skip(&mut self, weight: u64, ctx: &mut Ctx) {
        let round = self.round;
        let Some(c) = self.coord.as_mut() else { return };
        let instance = c.next_instance;
        c.next_instance = instance.next();
        let batch: Batch = BatchData::empty();
        c.outstanding.insert(instance, (batch.clone(), ctx.now(), ALL_PARTITIONS));
        c.logical_count += weight;
        let decisions = Arc::new(std::mem::take(&mut c.decided_unsent));
        let gc_upto = c.gc_watermark;
        c.last_mcast = ctx.now();
        if let Some(a) = self.acc.as_mut() {
            let _ = a.paxos.receive_2a(instance, round, batch.clone());
            a.skip_weights.insert(instance, weight);
        }
        ctx.counter_add("rp.skips", weight);
        let decided_below = self.decided_below();
        ctx.mcast(
            self.cfg.group,
            MMsg::Phase2a {
                instance,
                round,
                batch: batch.clone(),
                decisions: decisions.clone(),
                gc_upto,
                skip: weight,
                mask: ALL_PARTITIONS,
                decided_below,
            },
            self.cfg.ctl_bytes,
        );
        let r = self.round;
        self.learner_store(instance, &batch, ALL_PARTITIONS, r);
        self.learner_decide(&decisions, r);
        self.try_deliver(ctx);
    }
}

impl Actor for MRingProcess {
    fn on_start(&mut self, ctx: &mut Ctx) {
        if self.is_coordinator() {
            ctx.set_timer(self.cfg.batch_timeout, TimerToken(T_BATCH));
            ctx.set_timer(Dur::millis(100), TimerToken(T_FLOW));
            ctx.set_timer(self.cfg.suspicion_timeout / 2, TimerToken(T_HEARTBEAT));
            if let Some(skip) = self.cfg.skip {
                ctx.set_timer(skip.delta, TimerToken(T_SKIP));
            }
        }
        if self.prop.is_some() {
            ctx.set_timer(Dur::ZERO, TimerToken(T_PACE));
        }
        if self.lrn.is_some() {
            ctx.set_timer(self.cfg.gc_interval, TimerToken(T_GC));
            ctx.set_timer(Dur::millis(20), TimerToken(T_RETRANS));
        }
        if self.acc.is_some() && !self.is_coordinator() {
            ctx.set_timer(self.cfg.suspicion_timeout, TimerToken(T_SUSPECT));
        }
        if self.rec.is_some() && self.lrn.is_some() {
            // Persistent tick: drives catch-up retries while recovering
            // and re-enters catch-up if a delivery gap gets stuck later.
            ctx.set_timer(CATCHUP_RETRY, TimerToken(T_CATCHUP));
        }
        if self.rec.as_ref().is_some_and(|r| r.catching_up) {
            let next = self.lrn.as_ref().map(|l| l.next_deliver).unwrap_or(InstanceId(0));
            let index = self.lrn.as_ref().map(|l| l.index).unwrap_or(0);
            let pref = self.cfg.preferential_acceptor(index);
            let me = self.me;
            if let Some(rec) = self.rec.as_mut() {
                rec.catchup_started = ctx.now();
            }
            ctx.counter_add("rec.restarts", 1);
            ctx.tcp_send(pref, MMsg::CatchupReq { from: me, next }, self.cfg.ctl_bytes);
        }
    }

    // Default `on_batch` for same-instant runs (multicast fan-in,
    // same-tick 2A/2B spans): it already loops `on_message` with static
    // dispatch, and the 2A/2B handlers interleave acceptor votes with
    // learner delivery per message, so nothing can be hoisted per burst
    // without reordering the trace.
    fn on_message(&mut self, env: &Envelope, ctx: &mut Ctx) {
        let Some(msg) = env.payload.downcast_ref::<MMsg>() else { return };
        match msg {
            MMsg::Propose(v) => self.on_propose(*v, env.src, ctx),
            MMsg::Phase2a {
                instance,
                round,
                batch,
                decisions,
                gc_upto,
                skip,
                mask,
                decided_below,
            } => {
                let (instance, round, skip, mask) = (*instance, *round, *skip, *mask);
                let batch = batch.clone();
                let decisions = decisions.clone();
                let (gc_upto, decided_below) = (*gc_upto, *decided_below);
                // Acceptor path.
                self.on_phase2a(instance, round, batch.clone(), ctx);
                if let Some(a) = self.acc.as_mut() {
                    for &(d, _) in decisions.iter() {
                        a.decided.insert(d, ());
                    }
                    a.decided_below = a.decided_below.max(decided_below);
                    if skip > 0 {
                        a.skip_weights.insert(instance, skip);
                    }
                    if mask != ALL_PARTITIONS {
                        a.masks.insert(instance, mask);
                    }
                }
                // Learner path: payload plus piggybacked decisions.
                self.learner_store(instance, &batch, mask, round);
                self.learner_decide(&decisions, round);
                if gc_upto > InstanceId(0) && !self.is_coordinator() {
                    self.apply_gc(gc_upto);
                }
                self.try_deliver(ctx);
            }
            MMsg::Phase2b { instance, round } => self.on_phase2b(*instance, *round, ctx),
            MMsg::Ping { from } => {
                // Any live acceptor (ring member or spare) answers.
                if self.acc.is_some() {
                    let me = self.me;
                    ctx.udp_send(*from, MMsg::Pong { from: me }, self.cfg.ctl_bytes);
                }
            }
            MMsg::Pong { from } => {
                if let Some(c) = self.coord.as_mut() {
                    if let Some(r) = c.repair.as_mut() {
                        r.responders.insert(*from);
                    }
                }
            }
            MMsg::Decision { instances, round, gc_upto, decided_below } => {
                let instances = instances.clone();
                let (round, gc_upto, decided_below) = (*round, *gc_upto, *decided_below);
                if let Some(a) = self.acc.as_mut() {
                    a.last_coord_activity = ctx.now();
                    for &(d, _) in instances.iter() {
                        a.decided.insert(d, ());
                    }
                    a.decided_below = a.decided_below.max(decided_below);
                }
                self.learner_decide(&instances, round);
                if gc_upto > InstanceId(0) && !self.is_coordinator() {
                    self.apply_gc(gc_upto);
                }
                self.try_deliver(ctx);
            }
            MMsg::SlowDown => {
                if self.is_coordinator() {
                    let min = self.cfg.flow.min_window;
                    let Some(c) = self.coord.as_mut() else { return };
                    c.window = (c.window / 2).max(min);
                    c.last_slowdown = ctx.now();
                } else if self.acc.is_some() {
                    if let Some(succ) = self.cfg.successor(self.me) {
                        ctx.udp_send(succ, MMsg::SlowDown, self.cfg.ctl_bytes);
                    }
                }
            }
            MMsg::RetransReq { from, instances } => {
                let (from, instances) = (*from, instances.clone());
                self.on_retrans_req(from, &instances, ctx);
            }
            MMsg::RetransRep { instance, batch, decided, round, skip, mask } => {
                let (instance, decided, round, mask) = (*instance, *decided, *round, *mask);
                let _ = skip;
                let batch = batch.clone();
                if decided {
                    if mask & self.lrn.as_ref().map(|l| l.my_mask).unwrap_or(ALL_PARTITIONS) == 0 {
                        self.learner_decide(&[(instance, mask)], round);
                    } else {
                        // The acceptor vouches this vote decided: pin
                        // payload and decision to the vote's round.
                        self.learner_authoritative(instance, &batch, round);
                    }
                } else {
                    self.learner_store(instance, &batch, mask, round);
                }
                self.try_deliver(ctx);
            }
            MMsg::Version { learner, applied } => self.on_version(*learner, *applied, ctx),
            MMsg::Phase1a { round, from } => self.on_phase1a(*round, *from, ctx),
            MMsg::Phase1b { round, from, votes, decided } => {
                let (round, from) = (*round, *from);
                let votes = votes.clone();
                let decided = decided.clone();
                self.on_phase1b(round, from, votes, decided, ctx);
            }
            MMsg::NewRing { round, coord, ring } => {
                let (round, coord) = (*round, *coord);
                let ring = ring.clone();
                self.on_new_ring(round, coord, ring, ctx);
            }
            MMsg::CatchupReq { from, next } => {
                let (from, next) = (*from, *next);
                self.serve_catchup(from, next, ctx);
            }
            MMsg::CatchupRep { batches, upto, available_from } => {
                let (batches, upto, avail) = (batches.clone(), *upto, *available_from);
                self.on_catchup_rep(batches, upto, avail, ctx);
            }
            MMsg::SnapReq { from } => {
                let from = *from;
                if let Some(rec) = self.rec.as_ref() {
                    let snap = rec.store.lock().unwrap().checkpoint.clone();
                    let wire = (self.cfg.ctl_bytes as u64
                        + snap.as_ref().map(|c| c.state_bytes).unwrap_or(0))
                    .min(u32::MAX as u64) as u32;
                    ctx.tcp_send(from, MMsg::SnapRep { snap }, wire);
                }
            }
            MMsg::SnapRep { snap } => {
                let snap = snap.clone();
                self.on_snap_rep(snap, ctx);
            }
            MMsg::Heartbeat { round, coord, ring } => {
                if *round > self.round {
                    // Missed the NewRing (restart after pause): resync.
                    let (round, coord) = (*round, *coord);
                    let ring = ring.clone();
                    self.on_new_ring(round, coord, ring, ctx);
                } else if *round == self.round {
                    if let Some(a) = self.acc.as_mut() {
                        a.last_coord_activity = ctx.now();
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx) {
        match token_kind(token) {
            T_BATCH => {
                if self.is_coordinator() {
                    self.try_flush(ctx, true);
                    if self.cfg.partitions.is_some() {
                        self.flush_decisions(ctx);
                    }
                    ctx.set_timer(self.cfg.batch_timeout, TimerToken(T_BATCH));
                }
            }
            T_PACE => self.pace(ctx),
            T_RESUB => self.drain_resubmits(ctx),
            T_GC => self.gc_report(ctx),
            T_FLOW => {
                if self.is_coordinator() {
                    let flow = self.cfg.flow;
                    let round = self.round;
                    let group = self.cfg.group;
                    let ctl = self.cfg.ctl_bytes;
                    let Some(c) = self.coord.as_mut() else { return };
                    if ctx.now().saturating_since(c.last_slowdown) > flow.recovery_quiet {
                        c.window = (c.window + (c.window / 4).max(1)).min(flow.max_window);
                    }
                    // Retransmit 2As whose decision is overdue (a lost
                    // multicast would otherwise stall the ring, §3.3.4).
                    let overdue: Vec<(InstanceId, Batch, u32)> = c
                        .outstanding
                        .iter()
                        .filter(|(_, (_, at, _))| ctx.now().saturating_since(*at) > Dur::millis(50))
                        .take(64)
                        .map(|(&i, (b, _, m))| (i, b.clone(), *m))
                        .collect();
                    let _ = group;
                    for (instance, batch, mask) in overdue {
                        if let Some(c) = self.coord.as_mut() {
                            if let Some((_, at, _)) = c.outstanding.get_mut(&instance) {
                                *at = ctx.now();
                            }
                        }
                        let wire = (batch_bytes(&batch).min(u32::MAX as u64) as u32).max(ctl);
                        ctx.counter_add("rp.re2a", 1);
                        let decided_below = self.decided_below();
                        // The retransmission must carry the instance's
                        // original skip weight: learners feed it to the
                        // deterministic merge, and a weight that differs
                        // from the original 2A's would desynchronize the
                        // merge turn structure across replicas.
                        let skip = self.skip_weight_of(instance);
                        let msg = MMsg::Phase2a {
                            instance,
                            round,
                            batch,
                            decisions: Arc::new(Vec::new()),
                            gc_upto: InstanceId(0),
                            skip,
                            mask,
                            decided_below,
                        };
                        self.mcast_2a(msg, mask, wire, ctx);
                    }
                    self.try_flush(ctx, false);
                    self.ring_repair_check(ctx);
                    ctx.set_timer(Dur::millis(100), TimerToken(T_FLOW));
                }
            }
            T_DELIVER => self.try_deliver(ctx),
            T_RETRANS => self.retrans_check(ctx),
            T_SUSPECT => self.suspect_check(ctx),
            T_HEARTBEAT => {
                if self.is_coordinator() {
                    let quiet = {
                        let c = self.coord.as_ref().expect("coordinator");
                        ctx.now().saturating_since(c.last_mcast)
                    };
                    if quiet >= self.cfg.suspicion_timeout / 2 {
                        let round = self.round;
                        let coord = self.me;
                        let ring = self.cfg.ring.clone();
                        ctx.mcast(
                            self.cfg.group,
                            MMsg::Heartbeat { round, coord, ring },
                            self.cfg.ctl_bytes,
                        );
                        if let Some(c) = self.coord.as_mut() {
                            c.last_mcast = ctx.now();
                        }
                    }
                    ctx.set_timer(self.cfg.suspicion_timeout / 2, TimerToken(T_HEARTBEAT));
                }
            }
            T_DISK => {
                // A synchronous vote write completed.
                let instance = InstanceId(token_payload(token));
                let round = self.round;
                let is_first = self.ring_pos() == Some(0);
                if let Some(a) = self.acc.as_mut() {
                    a.awaiting_disk.remove(&instance);
                }
                // Recovery: only now — after the device confirmed the
                // write — does the vote enter the stable store.
                if let Some(rec) = self.rec.as_ref() {
                    if let Some(vote) = self.acc.as_ref().and_then(|a| a.paxos.vote(instance)) {
                        rec.store
                            .lock()
                            .unwrap()
                            .votes
                            .insert(instance, (vote.v_rnd, vote.v_val.clone()));
                    }
                }
                self.after_vote_durable(instance, round, is_first, ctx);
            }
            T_CKPT => {
                let payload = token_payload(token);
                if let Some(rec) = self.rec.as_mut() {
                    if rec.ckpt.as_mut().and_then(|c| c.on_token(payload)).is_some() {
                        // Acceptor-side trimming stays with the ring's
                        // version-vector GC (§3.3.7); the checkpoint
                        // already trimmed this node's durable vote log.
                        ctx.counter_add("rec.checkpoints", 1);
                    }
                }
            }
            T_CATCHUP => {
                if self.lrn.is_none() || self.rec.is_none() {
                    return;
                }
                let l = self.lrn.as_ref().expect("checked");
                let next = l.next_deliver;
                let stuck = l.horizon() > next
                    && l.window.front().is_some_and(|s| !s.ready() && !s.foreign);
                let index = l.index;
                let pref = self.cfg.preferential_acceptor(index);
                let me = self.me;
                let ctl = self.cfg.ctl_bytes;
                let rec = self.rec.as_mut().expect("checked");
                if rec.catching_up {
                    ctx.tcp_send(pref, MMsg::CatchupReq { from: me, next }, ctl);
                } else if stuck {
                    // A gap the 20 ms retransmission machinery did not
                    // close within a full tick (e.g. the acceptors GC'd
                    // the instance): go back to catch-up, which can
                    // escalate to a peer state transfer.
                    if rec.last_gap == Some(next) {
                        rec.catching_up = true;
                        rec.catchup_started = ctx.now();
                        rec.last_gap = None;
                        ctx.counter_add("rec.gap_catchups", 1);
                        ctx.tcp_send(pref, MMsg::CatchupReq { from: me, next }, ctl);
                    } else {
                        rec.last_gap = Some(next);
                    }
                } else {
                    rec.last_gap = None;
                }
                ctx.set_timer(CATCHUP_RETRY, TimerToken(T_CATCHUP));
            }
            T_SKIP => {
                if let (true, Some(skip)) = (self.is_coordinator(), self.cfg.skip) {
                    let target_inc = skip.lambda_per_sec * skip.delta.as_nanos() / 1_000_000_000;
                    let deficit = {
                        let Some(c) = self.coord.as_mut() else { return };
                        c.logical_target += target_inc;
                        c.logical_target.saturating_sub(c.logical_count)
                    };
                    if deficit > 0 {
                        self.propose_skip(deficit, ctx);
                    }
                    ctx.set_timer(skip.delta, TimerToken(T_SKIP));
                }
            }
            T_VOTE_RETRY => {
                let payload = token_payload(token);
                if payload == u64::MAX >> 8 {
                    return; // fire-and-forget async write completion
                }
                let is_first = payload & (1 << 55) != 0;
                let instance = InstanceId(payload & !(1 << 55));
                let round = self.round;
                self.after_vote_durable(instance, round, is_first, ctx);
            }
            _ => {}
        }
    }
}
