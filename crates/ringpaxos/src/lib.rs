//! # ringpaxos — the Ring Paxos atomic broadcast family (thesis ch. 3)
//!
//! Two high-throughput atomic broadcast protocols built on Paxos, designed
//! around (a) the separation of message ordering from payload propagation
//! and (b) efficient communication patterns:
//!
//! * [`mring::MRingProcess`] — **M-Ring Paxos** (Algorithm 2): payloads are
//!   disseminated by ip-multicast; a ring of `f + 1` acceptors relays
//!   Phase 2B votes; consensus runs on value ids.
//! * [`uring::URingProcess`] — **U-Ring Paxos** (Algorithm 3): for networks
//!   without ip-multicast; every process sits on one TCP ring, payload and
//!   votes pipeline around it.
//!
//! Both implement the engineering machinery the paper describes: batching
//! into 8/32 KB consensus packets, loss recovery via preferential
//! acceptors, learner-driven flow control, version-based garbage
//! collection, in-memory vs recoverable (disk) acceptors, and coordinator
//! failover (M-Ring Paxos).
//!
//! Use [`cluster::deploy_mring`] / [`cluster::deploy_uring`] to stand up a
//! full ensemble on a [`simnet`] cluster:
//!
//! ```
//! use simnet::prelude::*;
//! use ringpaxos::cluster::{deploy_mring, MRingOptions};
//!
//! let mut sim = Sim::new(SimConfig::default());
//! let d = deploy_mring(&mut sim, &MRingOptions::default(), |_cfg| {});
//! sim.run_until(Time::from_millis(500));
//! assert!(sim.metrics().counter(d.learners[0], "abcast.delivered_msgs") > 0);
//! assert!(d.log.lock().unwrap().check_total_order().is_ok());
//! ```

pub mod cluster;
pub mod config;
pub mod dedup;
pub mod mring;
pub mod msg;
pub mod uring;
pub mod value;

pub use cluster::{
    deploy_mring, deploy_mring_recoverable, deploy_uring, deploy_uring_recoverable, respawn_mring,
    respawn_uring, MRingDeployment, MRingOptions, RecoverableMRing, RecoverableURing,
    URingDeployment, URingOptions, URingRecoveryOptions,
};
pub use config::{FlowConfig, MRingConfig, SkipConfig, StorageMode, URingConfig};
pub use dedup::DeliveredTracker;
pub use mring::MRecovery;
pub use uring::URecovery;
pub use value::{batch_bytes, Batch, BatchData, Value};
