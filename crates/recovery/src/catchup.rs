//! The decided-instance suffix retained for catch-up.
//!
//! A recovery-enabled process keeps every decided batch at or above its
//! own checkpoint watermark in a [`DecidedCache`] (a dense
//! `paxos::window::Window`, trimmed by the same watermark that trims
//! the vote log). A restarted peer asks for the suffix starting at its
//! recovered watermark; the cache serves it in bounded chunks. A peer
//! that has fallen below the cache's base cannot be served
//! incrementally — it first receives the owner's checkpoint (a state
//! transfer of `state_bytes` on the wire) and resumes from that
//! watermark instead.

use paxos::msg::InstanceId;
use paxos::window::Window;

/// Decided batches retained above the checkpoint watermark.
#[derive(Default)]
pub struct DecidedCache<V> {
    win: Window<V>,
    /// One past the highest decided instance recorded.
    horizon: InstanceId,
}

impl<V: Clone> DecidedCache<V> {
    /// Creates an empty cache.
    pub fn new() -> DecidedCache<V> {
        DecidedCache { win: Window::new(), horizon: InstanceId(0) }
    }

    /// Records a decided instance.
    pub fn record(&mut self, instance: InstanceId, value: V) {
        if instance >= self.win.base() {
            self.win.insert(instance, value);
        }
        if instance.next() > self.horizon {
            self.horizon = instance.next();
        }
    }

    /// Lowest instance still retained (the trim watermark).
    pub fn base(&self) -> InstanceId {
        self.win.base()
    }

    /// One past the highest decided instance recorded.
    pub fn horizon(&self) -> InstanceId {
        self.horizon
    }

    /// Retained entries (memory accounting).
    pub fn len(&self) -> usize {
        self.win.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.win.is_empty()
    }

    /// Drops entries strictly below `watermark` (rides the checkpoint).
    pub fn trim_below(&mut self, watermark: InstanceId) {
        self.win.advance_base(watermark);
    }

    /// Serves a catch-up request: up to `max` contiguous decided
    /// instances starting at `next` (which callers must first clamp to
    /// [`DecidedCache::base`] after any snapshot transfer). Stops at the
    /// first gap — instances decide in order here, so a gap means the
    /// requester has reached the live frontier.
    pub fn serve(&self, next: InstanceId, max: usize) -> Vec<(InstanceId, V)> {
        let mut out = Vec::new();
        let mut i = next.max(self.win.base());
        while out.len() < max && i < self.horizon {
            match self.win.get(i) {
                Some(v) => out.push((i, v.clone())),
                None => break,
            }
            i = i.next();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_contiguous_suffix_in_chunks() {
        let mut c: DecidedCache<u64> = DecidedCache::new();
        for i in 0..10 {
            c.record(InstanceId(i), i * 10);
        }
        assert_eq!(c.horizon(), InstanceId(10));
        let chunk = c.serve(InstanceId(4), 3);
        assert_eq!(chunk, vec![(InstanceId(4), 40), (InstanceId(5), 50), (InstanceId(6), 60)]);
        let rest = c.serve(InstanceId(7), 100);
        assert_eq!(rest.len(), 3);
    }

    #[test]
    fn trim_rides_the_checkpoint_watermark() {
        let mut c: DecidedCache<u64> = DecidedCache::new();
        for i in 0..10 {
            c.record(InstanceId(i), i);
        }
        c.trim_below(InstanceId(6));
        assert_eq!(c.base(), InstanceId(6));
        assert_eq!(c.len(), 4);
        // A request below the base is clamped: the caller pairs it with
        // a checkpoint transfer covering the trimmed prefix.
        let served = c.serve(InstanceId(2), 100);
        assert_eq!(served.first().map(|&(i, _)| i), Some(InstanceId(6)));
    }

    #[test]
    fn stops_at_gaps() {
        let mut c: DecidedCache<u64> = DecidedCache::new();
        c.record(InstanceId(0), 0);
        c.record(InstanceId(2), 2);
        assert_eq!(c.serve(InstanceId(0), 10), vec![(InstanceId(0), 0)]);
    }
}
