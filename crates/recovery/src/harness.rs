//! Crash-schedule harness for recovery experiments and tests.
//!
//! A [`CrashPlan`] is a list of timed failure actions applied to a
//! running simulation: crash a node, bring it back with preserved state
//! ([`CrashAction::Recover`] / [`CrashAction::Restart`]), or respawn a
//! fresh process over its stable store ([`CrashAction::Respawn`], the
//! interesting one — the caller's closure installs a new actor with
//! `Sim::replace_actor`, modelling a process restart that must recover
//! from disk).
//!
//! `CrashPlan` is the node-crash subset of the engine's general
//! fault-injection layer and delegates to it: [`CrashPlan::run`]
//! translates each action into a [`simnet::fault::FaultAction`] and
//! hands the whole schedule to [`simnet::fault::FaultPlan`]. Schedules
//! that also need link partitions, loss/reorder bursts, or stragglers
//! should use `FaultPlan` directly.

use simnet::fault::{FaultAction, FaultPlan};
use simnet::ids::NodeId;
use simnet::sim::Sim;
use simnet::time::Time;

/// One failure-injection action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashAction {
    /// `set_node_up(node, false)`: the node drops all traffic.
    Crash,
    /// `set_node_up(node, true)`: back up, actor state preserved,
    /// timers it missed while down are gone.
    Recover,
    /// `restart_node(node)`: back up and the existing actor's
    /// `on_start` re-runs (SIGSTOP/SIGCONT semantics — actors must
    /// tolerate the resulting duplicate timer chains).
    Restart,
    /// Bring the node up and hand it to the respawn closure, which
    /// installs a fresh actor over the node's stable store
    /// (process-restart-with-recovery semantics).
    Respawn,
}

/// A timed sequence of crash actions driven over a simulation.
#[derive(Default)]
pub struct CrashPlan {
    events: Vec<(Time, NodeId, CrashAction)>,
}

impl CrashPlan {
    /// Creates an empty plan.
    pub fn new() -> CrashPlan {
        CrashPlan::default()
    }

    /// Adds an action at `at` (builder style).
    pub fn at(mut self, at: Time, node: NodeId, action: CrashAction) -> CrashPlan {
        self.events.push((at, node, action));
        self
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[(Time, NodeId, CrashAction)] {
        &self.events
    }

    /// Runs `sim` through every scheduled action (in time order) and on
    /// to `until`. `respawn` is invoked for [`CrashAction::Respawn`]
    /// events after the node is marked up; it must install the fresh
    /// actor (typically `sim.replace_actor` with a recovery-enabled
    /// process sharing the node's stable store).
    pub fn run(self, sim: &mut Sim, until: Time, respawn: impl FnMut(&mut Sim, NodeId)) {
        let mut plan = FaultPlan::new();
        for (at, node, action) in self.events {
            let fa = match action {
                CrashAction::Crash => FaultAction::Crash(node),
                CrashAction::Recover => FaultAction::Recover(node),
                CrashAction::Restart => FaultAction::Restart(node),
                CrashAction::Respawn => FaultAction::Respawn(node),
            };
            plan = plan.at(at, fa);
        }
        plan.run(sim, until, respawn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::config::SimConfig;
    use simnet::prelude::*;
    use std::sync::Arc;
    use std::sync::Mutex;

    struct Counter(Arc<Mutex<u32>>);
    // Default `on_batch` (loops `on_message`): the harness only counts
    // starts, so per-burst amortization has nothing to buy here.
    impl Actor for Counter {
        fn on_start(&mut self, _ctx: &mut Ctx) {
            *self.0.lock().unwrap() += 1;
        }
        fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
    }

    #[test]
    fn plan_applies_actions_in_time_order() {
        let starts = Arc::new(Mutex::new(0));
        let mut sim = Sim::new(SimConfig::default());
        let n = sim.add_node(Box::new(Counter(starts.clone())));
        let respawned = Arc::new(Mutex::new(false));
        let r2 = respawned.clone();
        let s2 = starts.clone();
        CrashPlan::new()
            .at(Time::from_millis(30), n, CrashAction::Respawn)
            .at(Time::from_millis(10), n, CrashAction::Crash)
            .run(&mut sim, Time::from_millis(50), move |sim, node| {
                *r2.lock().unwrap() = true;
                sim.replace_actor(node, Box::new(Counter(s2.clone())));
            });
        assert!(*respawned.lock().unwrap());
        assert_eq!(*starts.lock().unwrap(), 2, "original start + respawned start");
        assert_eq!(sim.now(), Time::from_millis(50));
        assert!(sim.is_up(n));
    }
}
