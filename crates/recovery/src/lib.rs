//! # recovery — durable logging, checkpointing, and replica catch-up
//!
//! The paper's performance story is only complete with its recovery
//! story (§3.3.5, §3.5.5, ch. 5): acceptors log votes to disk before
//! acknowledging them, replicas checkpoint service state, and a
//! recovering replica catches up from a checkpoint plus the decided
//! suffix instead of replaying history. This crate is that subsystem,
//! shared by U-Ring and M-Ring Paxos and by the SMR replica layer.
//!
//! # The durability model
//!
//! The simulator models a process restart as [`Sim::replace_actor`]:
//! the old actor (and all its in-memory state) is discarded and a fresh
//! one starts. Anything that must survive therefore lives *outside* the
//! actor, in a [`stable::StableHandle`] — the logical contents of the
//! node's disk, shared (via `Rc`) between successive incarnations of
//! the process on that node. The *timing* of getting bytes into it is
//! still paid through the simulated disk ([`Ctx::disk_write`] /
//! [`Ctx::disk_write_coalesced`], the §3.5.5 calibration: ~270 Mbps for
//! synchronous 32 KB writes): state enters the stable store only when
//! the corresponding `DiskDone` completion fires, so a crash between
//! issuing a write and its completion loses exactly what a real crash
//! would.
//!
//! # Pieces
//!
//! * [`wal::VoteLog`] — the acceptor write-ahead log. In
//!   [`wal::LogMode::Sync`] every vote is written (coalesced into
//!   `disk_unit` device operations, §3.5.5) before the acceptor votes;
//!   in [`wal::LogMode::Group`] appends accumulate and one device write
//!   commits the whole group (group commit: fewer operations, slightly
//!   higher vote latency).
//! * [`checkpoint::Checkpointer`] — periodic replica checkpoints: every
//!   `interval` delivered instances the replica snapshots its service
//!   state (an opaque, byte-sized blob), writes it through the disk,
//!   and — once durable — trims its vote log and decided-batch cache
//!   below the checkpoint watermark, the same role the
//!   `paxos::window::Window` GC watermark plays for in-memory state.
//! * [`catchup::DecidedCache`] — the decided-instance suffix a process
//!   retains (above its checkpoint watermark) to serve catch-up
//!   requests from restarted peers.
//! * [`app::RecoveredApp`] — the service-state hook: what to snapshot,
//!   how to restore it, and how delivered values mutate it. The `core`
//!   crate bridges its `Service`/`Snapshot` traits onto this.
//! * [`harness::CrashPlan`] — crash-schedule driver for experiments and
//!   tests: crash / recover / restart / respawn actions at fixed times.
//!
//! [`Sim::replace_actor`]: simnet::sim::Sim::replace_actor
//! [`Ctx::disk_write`]: simnet::sim::Ctx::disk_write
//! [`Ctx::disk_write_coalesced`]: simnet::sim::Ctx::disk_write_coalesced

pub mod app;
pub mod catchup;
pub mod checkpoint;
pub mod harness;
pub mod stable;
pub mod wal;

pub use app::{NullApp, RecoveredApp};
pub use catchup::DecidedCache;
pub use checkpoint::Checkpointer;
pub use harness::{CrashAction, CrashPlan};
pub use stable::{stable, Checkpoint, StableHandle, StableState};
pub use wal::{LogMode, VoteLog};

/// Payload value (56-bit token space) reserved for the group-commit
/// flush timer, distinguishing it from flush-completion disk tokens.
pub const FLUSH_TIMER: u64 = (1u64 << 56) - 1;
