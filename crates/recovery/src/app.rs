//! The service-state hook for checkpointing learners.
//!
//! The broadcast layer doesn't know what a delivered value *does* —
//! that's the replicated service's business. [`RecoveredApp`] is the
//! narrow interface a recovery-enabled learner needs: apply a delivered
//! value deterministically, snapshot the resulting state (as an opaque
//! blob with a modelled byte size), and restore from a snapshot. The
//! `core` crate bridges its `Snapshot` service trait onto this; the
//! built-in [`NullApp`] is the stateless variant (checkpoints carry
//! only the delivery watermark and dedup marks).

use std::any::Any;
use std::sync::Arc;

/// What a recovery-enabled learner asks of its replicated service.
pub trait RecoveredApp: Send {
    /// Applies one delivered value (identified by proposer node id,
    /// per-proposer sequence, and payload size). Must be deterministic:
    /// every learner incarnation applying the same sequence reaches the
    /// same state.
    fn apply(&mut self, proposer: u64, seq: u64, bytes: u32);

    /// Snapshots the current state: `(modelled on-disk bytes, blob)`.
    fn snapshot(&mut self) -> (u64, Option<Arc<dyn Any + Send + Sync>>);

    /// Restores state from a snapshot blob (`None` = the empty state).
    fn restore(&mut self, state: Option<&Arc<dyn Any + Send + Sync>>);
}

/// The stateless service: applying does nothing and a checkpoint
/// carries only `fixed_bytes` of metadata.
#[derive(Clone, Copy, Debug)]
pub struct NullApp {
    /// Modelled checkpoint size (delivery watermark + dedup marks).
    pub fixed_bytes: u64,
}

impl Default for NullApp {
    fn default() -> NullApp {
        NullApp { fixed_bytes: 4096 }
    }
}

impl RecoveredApp for NullApp {
    fn apply(&mut self, _proposer: u64, _seq: u64, _bytes: u32) {}

    fn snapshot(&mut self) -> (u64, Option<Arc<dyn Any + Send + Sync>>) {
        (self.fixed_bytes, None)
    }

    fn restore(&mut self, _state: Option<&Arc<dyn Any + Send + Sync>>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_app_is_stateless() {
        let mut a = NullApp::default();
        a.apply(1, 2, 3);
        let (bytes, state) = a.snapshot();
        assert_eq!(bytes, 4096);
        assert!(state.is_none());
        a.restore(None);
    }
}
