//! The stable store: what a node's disk logically contains.
//!
//! A [`StableHandle`] is shared between successive incarnations of the
//! process on one node (the deployment clones it into each actor it
//! installs with `replace_actor`), so its contents survive a process
//! restart — exactly like the bytes on a real disk. Writers must only
//! move state into it from a `DiskDone` completion, after the simulated
//! disk has charged the write's latency and bandwidth; [`wal::VoteLog`]
//! and [`checkpoint::Checkpointer`] enforce that discipline.
//!
//! [`wal::VoteLog`]: crate::wal::VoteLog
//! [`checkpoint::Checkpointer`]: crate::checkpoint::Checkpointer

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::sync::Mutex;

use paxos::msg::{InstanceId, Round};

/// A durable replica checkpoint: the delivery watermark, the service
/// snapshot, and the bookkeeping a restarted learner needs to resume
/// exactly-once delivery from that basis.
#[derive(Clone, Debug, Default)]
pub struct Checkpoint {
    /// Next instance to deliver after restoring this checkpoint (every
    /// instance below is reflected in `state`).
    pub watermark: InstanceId,
    /// Values delivered to the application when the checkpoint was
    /// taken — the resume basis for the crash-aware agreement checker.
    pub log_pos: u64,
    /// Per-proposer exactly-once watermarks (the `DeliveredTracker`
    /// marks) as of `watermark`.
    pub marks: Vec<u64>,
    /// Out-of-order deliveries parked above their proposer's watermark
    /// when the checkpoint was taken (the tracker's overflow set).
    pub parked: Vec<(u64, u64)>,
    /// Modelled on-disk size of the snapshot, in bytes (what the disk
    /// write was charged, and what a state transfer puts on the wire).
    pub state_bytes: u64,
    /// Opaque service snapshot (`None` for stateless learners).
    pub state: Option<Arc<dyn Any + Send + Sync>>,
}

/// The logical durable contents of one node, generic over the vote
/// value type (instantiated with `ringpaxos::Batch` by the protocols).
#[derive(Debug, Default)]
pub struct StableState<V> {
    /// Highest round the acceptor incarnations on this node promised.
    pub promised: Round,
    /// The acceptor's durable vote log: latest vote per instance.
    pub votes: BTreeMap<InstanceId, (Round, V)>,
    /// The latest durable replica checkpoint.
    pub checkpoint: Option<Checkpoint>,
}

/// Shared handle to a node's stable store.
pub type StableHandle<V> = Arc<Mutex<StableState<V>>>;

/// Creates an empty stable store for one node.
pub fn stable<V>() -> StableHandle<V> {
    Arc::new(Mutex::new(StableState {
        promised: Round::ZERO,
        votes: BTreeMap::new(),
        checkpoint: None,
    }))
}

impl<V> StableState<V> {
    /// Drops durable votes strictly below `watermark` (log trimming once
    /// a checkpoint covers them).
    pub fn trim_votes_below(&mut self, watermark: InstanceId) {
        self.votes = self.votes.split_off(&watermark);
    }

    /// Records a durable promise. Promise writes are control-sized and
    /// rare (failover only); their disk time is folded into the next
    /// vote flush rather than modelled separately.
    pub fn log_promise(&mut self, round: Round) {
        if round > self.promised {
            self.promised = round;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trim_drops_only_below_watermark() {
        let s: StableHandle<u32> = stable();
        {
            let mut s = s.lock().unwrap();
            for i in 0..10 {
                s.votes.insert(InstanceId(i), (Round::new(1, 0), i as u32));
            }
            s.trim_votes_below(InstanceId(4));
        }
        let s = s.lock().unwrap();
        assert_eq!(s.votes.len(), 6);
        assert!(s.votes.contains_key(&InstanceId(4)));
        assert!(!s.votes.contains_key(&InstanceId(3)));
    }

    #[test]
    fn promise_is_monotone() {
        let s: StableHandle<u32> = stable();
        s.lock().unwrap().log_promise(Round::new(3, 1));
        s.lock().unwrap().log_promise(Round::new(2, 0));
        assert_eq!(s.lock().unwrap().promised, Round::new(3, 1));
    }
}
