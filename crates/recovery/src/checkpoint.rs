//! Periodic replica checkpoints.
//!
//! Every `interval` delivered instances the replica snapshots its
//! service state and writes it through the simulated disk. The previous
//! durable checkpoint stays in the [`StableHandle`] until the new
//! write's `DiskDone` fires — a crash mid-checkpoint recovers from the
//! old one, never from a torn write. Once durable, the caller trims its
//! vote log and decided-batch cache below the new watermark (log
//! trimming riding the same GC watermark discipline as
//! `paxos::window::Window`).

use std::any::Any;
use std::sync::Arc;

use simnet::prelude::*;

use paxos::msg::InstanceId;

use crate::stable::{Checkpoint, StableHandle};

/// Drives periodic checkpoints for one replica.
pub struct Checkpointer<V> {
    store: StableHandle<V>,
    /// Checkpoint every this many delivered instances.
    interval: u64,
    token_kind: u64,
    /// Watermark of the latest checkpoint taken (durable or in flight).
    last: InstanceId,
    /// The checkpoint whose disk write is outstanding.
    inflight: Option<(u64, Checkpoint)>,
    next_id: u64,
}

impl<V> Checkpointer<V> {
    /// Creates a checkpointer writing through `store` under the host's
    /// `token_kind` timer namespace.
    pub fn new(store: StableHandle<V>, interval: u64, token_kind: u64) -> Checkpointer<V> {
        let last = store.lock().unwrap().checkpoint.as_ref().map_or(InstanceId(0), |c| c.watermark);
        Checkpointer {
            store,
            interval: interval.max(1),
            token_kind,
            last,
            inflight: None,
            next_id: 0,
        }
    }

    /// The latest durable checkpoint, cloned for restore at start-up.
    pub fn recover(store: &StableHandle<V>) -> Option<Checkpoint> {
        store.lock().unwrap().checkpoint.clone()
    }

    /// The checkpoint interval, in instances.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Whether a checkpoint is due at delivery position `next_deliver`
    /// (cheap pre-check so callers skip exporting state when not).
    pub fn due(&self, next_deliver: InstanceId) -> bool {
        self.inflight.is_none() && next_deliver.0 >= self.last.0 + self.interval
    }

    /// Called after delivery advanced to `next_deliver`. When a
    /// checkpoint is due (and none is in flight), `snap` is invoked for
    /// the service snapshot — `(modelled bytes, opaque state)` — and the
    /// disk write is issued. Returns whether a checkpoint was started.
    pub fn maybe_checkpoint(
        &mut self,
        next_deliver: InstanceId,
        log_pos: u64,
        marks: Vec<u64>,
        parked: Vec<(u64, u64)>,
        snap: impl FnOnce() -> (u64, Option<Arc<dyn Any + Send + Sync>>),
        ctx: &mut Ctx,
    ) -> bool {
        if self.inflight.is_some() || next_deliver.0 < self.last.0 + self.interval {
            return false;
        }
        let (state_bytes, state) = snap();
        let cp = Checkpoint { watermark: next_deliver, log_pos, marks, parked, state_bytes, state };
        let id = self.next_id;
        self.next_id += 1;
        // One sequential write of the whole snapshot (plus a small
        // metadata footer folded into the same operation).
        let bytes = state_bytes.clamp(1, u32::MAX as u64) as u32;
        ctx.disk_write(bytes, TimerToken(self.token_kind | id));
        self.inflight = Some((id, cp));
        self.last = next_deliver;
        true
    }

    /// Handles a disk completion of this checkpointer's kind: commits
    /// the in-flight checkpoint to the stable store and returns its
    /// watermark — the caller trims logs and caches below it.
    pub fn on_token(&mut self, payload: u64) -> Option<InstanceId> {
        match self.inflight.take() {
            Some((id, cp)) if id == payload => {
                let watermark = cp.watermark;
                self.store.lock().unwrap().checkpoint = Some(cp);
                self.store.lock().unwrap().trim_votes_below(watermark);
                Some(watermark)
            }
            other => {
                self.inflight = other;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::stable;
    use simnet::config::SimConfig;
    use simnet::sim::{Actor, Envelope, Sim};
    use simnet::time::{Dur, Time};
    use std::sync::Arc;
    use std::sync::Mutex;

    const KIND: u64 = 11 << 56;

    struct Ckpt {
        cp: Checkpointer<u32>,
        deliver_upto: u64,
        trims: Arc<Mutex<Vec<(u64, Time)>>>,
    }

    impl Actor for Ckpt {
        fn on_start(&mut self, ctx: &mut Ctx) {
            // Simulate delivery advancing one instance at a time.
            for i in 1..=self.deliver_upto {
                self.cp.maybe_checkpoint(
                    InstanceId(i),
                    i * 10,
                    vec![i],
                    Vec::new(),
                    || (64 * 1024, None),
                    ctx,
                );
            }
        }
        fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
        fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx) {
            if let Some(w) = self.cp.on_token(token.0 & !(0xff << 56)) {
                self.trims.lock().unwrap().push((w.0, ctx.now()));
            }
        }
    }

    #[test]
    fn checkpoints_fire_at_interval_and_commit_on_disk_done() {
        let store = stable();
        let trims = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(Box::new(Ckpt {
            cp: Checkpointer::new(store.clone(), 4, KIND),
            deliver_upto: 9,
            trims: trims.clone(),
        }));
        sim.run_to_idle();
        // Due at 4 and (once the first write completed — instantaneous
        // in virtual terms only after DiskDone, but delivery here all
        // happens at t=0, so the second is suppressed while in flight)
        // the watermark ends at 4.
        let trims = trims.lock().unwrap();
        assert_eq!(trims.len(), 1);
        assert_eq!(trims[0].0, 4);
        let want = SimConfig::default().disk_write_time(64 * 1024);
        assert_eq!(trims[0].1, Time::ZERO + want);
        let cp = store.lock().unwrap().checkpoint.clone().expect("durable checkpoint");
        assert_eq!(cp.watermark, InstanceId(4));
        assert_eq!(cp.log_pos, 40);
        assert_eq!(cp.marks, vec![4]);
    }

    #[test]
    fn crash_mid_write_keeps_previous_checkpoint() {
        let store = stable();
        store.lock().unwrap().checkpoint =
            Some(Checkpoint { watermark: InstanceId(2), log_pos: 20, ..Checkpoint::default() });
        let trims = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new(SimConfig::default());
        let n = sim.add_node(Box::new(Ckpt {
            cp: Checkpointer::new(store.clone(), 4, KIND),
            deliver_upto: 9,
            trims: trims.clone(),
        }));
        // Interval counts from the recovered watermark (2): due at 6.
        sim.run_until(Time::ZERO + Dur::micros(50)); // write takes ~1.5 ms
        sim.set_node_up(n, false);
        sim.run_to_idle();
        assert!(trims.lock().unwrap().is_empty());
        let cp = store.lock().unwrap().checkpoint.clone().expect("old checkpoint survives");
        assert_eq!(cp.watermark, InstanceId(2), "torn write never becomes the checkpoint");
    }
}
