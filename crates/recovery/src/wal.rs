//! The acceptor write-ahead vote log.
//!
//! Write-ahead discipline: an acceptor may only vote (send its Phase 2B
//! / forward the combined 2A-2B) once the vote is durable, so that a
//! restarted acceptor can never contradict a vote a quorum may have
//! counted. [`VoteLog`] buffers appended votes, pays for them through
//! the simulated disk, and hands them back to the caller — via
//! [`VoteLog::on_token`] — when the corresponding `DiskDone` fires;
//! only then does the entry enter the [`StableHandle`] and only then
//! should the caller vote.
//!
//! Two commit modes (§3.5.5):
//!
//! * [`LogMode::Sync`] — one coalesced device write per vote
//!   (`disk_write_coalesced`, amortizing the per-operation latency over
//!   `disk_unit`-sized appends exactly like the paper's writer thread).
//!   Lowest latency added per vote; the disk sustains ~270 Mbps of
//!   32 KB-batched votes in the default calibration.
//! * [`LogMode::Group`] — group commit: appends accumulate and a single
//!   device write (`disk_write`) commits the whole group when the flush
//!   timer fires or the group reaches `max_bytes`. One operation
//!   latency is paid per *group*, trading a bounded extra vote latency
//!   (up to the flush interval) for fewer device operations.

use simnet::prelude::*;
use simnet::time::Dur;

use paxos::msg::{InstanceId, Round};

use crate::stable::StableHandle;
use crate::FLUSH_TIMER;

/// How the vote log commits appended votes to the device.
#[derive(Clone, Copy, Debug)]
pub enum LogMode {
    /// One coalesced device write per vote; the vote is released when
    /// its own write completes.
    Sync,
    /// Group commit: flush at most every `interval`, or as soon as
    /// `max_bytes` of votes are pending.
    Group {
        /// Flush timer period.
        interval: Dur,
        /// Pending-byte threshold that forces an immediate flush.
        max_bytes: u32,
    },
}

/// One vote awaiting durability.
struct PendingVote<V> {
    instance: InstanceId,
    round: Round,
    value: V,
    bytes: u32,
}

/// The write-ahead acceptor log. `token_kind` is the host actor's timer
/// namespace (top byte) under which the log's disk completions and
/// flush timers arrive; the host routes every token of that kind to
/// [`VoteLog::on_token`].
pub struct VoteLog<V> {
    store: StableHandle<V>,
    mode: LogMode,
    disk_unit: u32,
    token_kind: u64,
    /// Appended, not yet submitted to the device (group mode only).
    pending: Vec<PendingVote<V>>,
    pending_bytes: u32,
    /// Submitted flushes awaiting their `DiskDone`, FIFO (the simulated
    /// disk is a single queue, so completions arrive in issue order).
    inflight: std::collections::VecDeque<(u64, Vec<PendingVote<V>>)>,
    next_flush: u64,
    timer_armed: bool,
}

impl<V: Clone> VoteLog<V> {
    /// Creates a vote log writing through `store`.
    pub fn new(
        store: StableHandle<V>,
        mode: LogMode,
        disk_unit: u32,
        token_kind: u64,
    ) -> VoteLog<V> {
        VoteLog {
            store,
            mode,
            disk_unit,
            token_kind,
            pending: Vec::new(),
            pending_bytes: 0,
            inflight: std::collections::VecDeque::new(),
            next_flush: 0,
            timer_armed: false,
        }
    }

    /// The stable store this log writes into.
    pub fn store(&self) -> &StableHandle<V> {
        &self.store
    }

    /// Votes appended but not yet durable (pending + in flight).
    pub fn outstanding(&self) -> usize {
        self.pending.len() + self.inflight.iter().map(|(_, v)| v.len()).sum::<usize>()
    }

    /// Appends a vote. The caller must *not* act on it until
    /// [`VoteLog::on_token`] returns it as durable.
    pub fn append(
        &mut self,
        instance: InstanceId,
        round: Round,
        value: V,
        bytes: u32,
        ctx: &mut Ctx,
    ) {
        let entry = PendingVote { instance, round, value, bytes: bytes.max(1) };
        match self.mode {
            LogMode::Sync => {
                let id = self.next_flush;
                self.next_flush += 1;
                ctx.disk_write_coalesced(
                    entry.bytes,
                    self.disk_unit,
                    TimerToken(self.token_kind | id),
                );
                self.inflight.push_back((id, vec![entry]));
            }
            LogMode::Group { interval, max_bytes } => {
                self.pending_bytes += entry.bytes;
                self.pending.push(entry);
                if self.pending_bytes >= max_bytes {
                    self.flush(ctx);
                } else if !self.timer_armed {
                    self.timer_armed = true;
                    ctx.set_timer(interval, TimerToken(self.token_kind | FLUSH_TIMER));
                }
            }
        }
    }

    /// Submits the pending group to the device as one write.
    fn flush(&mut self, ctx: &mut Ctx) {
        if self.pending.is_empty() {
            return;
        }
        let id = self.next_flush;
        self.next_flush += 1;
        let group = std::mem::take(&mut self.pending);
        ctx.disk_write(self.pending_bytes.max(1), TimerToken(self.token_kind | id));
        self.pending_bytes = 0;
        self.inflight.push_back((id, group));
    }

    /// Handles a token of this log's kind: a flush-timer tick submits
    /// the pending group; a disk completion commits its flush to the
    /// stable store and returns the now-durable votes, in append order —
    /// the caller votes on each.
    pub fn on_token(&mut self, payload: u64, ctx: &mut Ctx) -> Vec<(InstanceId, Round, V)> {
        if payload == FLUSH_TIMER {
            self.timer_armed = false;
            self.flush(ctx);
            return Vec::new();
        }
        let Some(&(front_id, _)) = self.inflight.front() else {
            return Vec::new();
        };
        // Completions arrive in issue order on a healthy node, but a
        // crash drops the completion events that were in flight while
        // the node was down: those flushes never report back, and the
        // first completion after recovery belongs to a *later* flush.
        // Skipped entries are treated as lost before reaching the
        // platter — their votes never become durable and the
        // coordinator's re-proposal path re-votes them. A completion
        // with no matching entry (a leftover from a replaced
        // incarnation) is ignored.
        if front_id != payload {
            match self.inflight.iter().position(|e| e.0 == payload) {
                Some(k) => {
                    for _ in 0..k {
                        self.inflight.pop_front();
                    }
                }
                None => return Vec::new(),
            }
        }
        let (_, group) = self.inflight.pop_front().expect("checked front");
        let mut store = self.store.lock().unwrap();
        let mut durable = Vec::with_capacity(group.len());
        for e in group {
            store.votes.insert(e.instance, (e.round, e.value.clone()));
            durable.push((e.instance, e.round, e.value));
        }
        durable
    }

    /// The durable log contents, for replay into a fresh acceptor
    /// (`paxos::acceptor::Acceptor::restore`).
    pub fn replay(&self) -> (Round, Vec<(InstanceId, Round, V)>) {
        let store = self.store.lock().unwrap();
        let votes = store.votes.iter().map(|(&i, (r, v))| (i, *r, v.clone())).collect::<Vec<_>>();
        (store.promised, votes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::stable;
    use simnet::config::SimConfig;
    use simnet::sim::{Actor, Envelope, Sim};
    use simnet::time::Time;
    use std::sync::Arc;
    use std::sync::Mutex;

    const KIND: u64 = 9 << 56;

    /// Appends `n` votes on start and records when each becomes durable.
    struct Logger {
        wal: VoteLog<u32>,
        n: u64,
        durable: Arc<Mutex<Vec<(u64, Time)>>>,
    }

    impl Actor for Logger {
        fn on_start(&mut self, ctx: &mut Ctx) {
            for i in 0..self.n {
                self.wal.append(InstanceId(i), Round::new(1, 0), i as u32, 8192, ctx);
            }
        }
        fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
        fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx) {
            for (i, _, _) in self.wal.on_token(token.0 & !(0xff << 56), ctx) {
                self.durable.lock().unwrap().push((i.0, ctx.now()));
            }
        }
    }

    fn run(mode: LogMode, n: u64) -> (Vec<(u64, Time)>, StableHandle<u32>) {
        let store = stable();
        let durable = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(Box::new(Logger {
            wal: VoteLog::new(store.clone(), mode, 32 * 1024, KIND),
            n,
            durable: durable.clone(),
        }));
        sim.run_to_idle();
        let d = durable.lock().unwrap().clone();
        (d, store)
    }

    #[test]
    fn sync_mode_releases_votes_in_order_after_disk_time() {
        let (durable, store) = run(LogMode::Sync, 4);
        assert_eq!(durable.len(), 4);
        assert_eq!(durable.iter().map(|&(i, _)| i).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        // Each 8 KB append pays its coalesced share of the device op.
        let per = SimConfig::default().disk_write_time_coalesced(8192, 32 * 1024);
        assert_eq!(durable[0].1, Time::ZERO + per);
        assert!(durable[3].1 > durable[0].1);
        assert_eq!(store.lock().unwrap().votes.len(), 4);
    }

    #[test]
    fn group_mode_commits_the_group_in_one_operation() {
        let interval = Dur::millis(1);
        let (durable, store) = run(LogMode::Group { interval, max_bytes: 1024 * 1024 }, 4);
        assert_eq!(durable.len(), 4);
        // Nothing is durable before the flush timer fires.
        assert!(durable[0].1 >= Time::ZERO + interval);
        // One device write commits the whole group: all four release at
        // the same completion time.
        assert!(durable.iter().all(|&(_, t)| t == durable[0].1));
        assert_eq!(store.lock().unwrap().votes.len(), 4);
    }

    #[test]
    fn group_mode_flushes_early_at_byte_threshold() {
        let (durable, _) = run(LogMode::Group { interval: Dur::secs(10), max_bytes: 16 * 1024 }, 4);
        // 8 KB appends hit the 16 KB threshold at the second append: two
        // flushes of two votes each, both long before the 10 s timer.
        assert_eq!(durable.len(), 4);
        assert!(durable[3].1 < Time::ZERO + Dur::secs(1));
    }

    #[test]
    fn crash_before_completion_loses_exactly_the_unflushed_votes() {
        // Issue 4 sync appends, crash the node before any DiskDone fires:
        // the stable store must contain nothing.
        let store = stable();
        let durable = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new(SimConfig::default());
        let n = sim.add_node(Box::new(Logger {
            wal: VoteLog::new(store.clone(), LogMode::Sync, 32 * 1024, KIND),
            n: 4,
            durable: durable.clone(),
        }));
        sim.run_until(Time::ZERO + Dur::micros(100)); // first write needs ~600 us
        sim.set_node_up(n, false);
        sim.run_to_idle();
        assert!(durable.lock().unwrap().is_empty());
        assert!(store.lock().unwrap().votes.is_empty(), "nothing durable before DiskDone");
    }

    #[test]
    fn replay_returns_durable_state() {
        let (_, store) = run(LogMode::Sync, 3);
        store.lock().unwrap().log_promise(Round::new(2, 1));
        let wal: VoteLog<u32> = VoteLog::new(store, LogMode::Sync, 32 * 1024, KIND);
        let (promised, votes) = wal.replay();
        assert_eq!(promised, Round::new(2, 1));
        assert_eq!(votes.len(), 3);
        let a = paxos::acceptor::Acceptor::restore(promised, votes);
        assert_eq!(a.rnd(), Round::new(2, 1));
        assert_eq!(a.vote(InstanceId(2)).unwrap().v_val, 2);
    }
}
