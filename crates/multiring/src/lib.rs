//! # multiring — Multi-Ring Paxos atomic multicast (thesis ch. 5)
//!
//! Multi-Ring Paxos composes an unbounded number of independent
//! M-Ring Paxos instances — one per multicast *group* — to scale ordered
//! delivery linearly with added rings. Learners subscribe to any subset
//! of groups and merge their decision streams deterministically: `M`
//! logical instances per group, round-robin in group-id order.
//!
//! Rings that run below the global expected rate λ propose *skip
//! instances* every ∆ so slower groups never stall a learner's merge
//! (ch. 5, Algorithm 1). Skips are batched: any number of skipped
//! instances costs one consensus execution.
//!
//! ```
//! use simnet::prelude::*;
//! use multiring::{deploy_multiring, MultiRingOptions};
//!
//! let mut sim = Sim::new(SimConfig::default());
//! let opts = MultiRingOptions::default(); // 2 rings, 1 learner on both
//! let d = deploy_multiring(&mut sim, &opts);
//! sim.run_until(Time::from_millis(500));
//! assert!(sim.metrics().counter(d.learners[0], "abcast.delivered_msgs") > 0);
//! ```

pub mod learner;
pub mod merge;
pub mod mrp;

pub use learner::{ring_sink, MultiRingLearner, RingSink, MRP_LATENCY, MRP_STALLS};
pub use merge::{DeterministicMerge, MergeEntry};
pub use mrp::{deploy_multiring, MultiRingDeployment, MultiRingOptions, RingHandle};
