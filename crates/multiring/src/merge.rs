//! Deterministic merge of per-ring instance streams (ch. 5, §5.2.1).
//!
//! A learner subscribed to groups `g_{l1} < g_{l2} < …` delivers `M`
//! logical consensus instances from each group in round-robin order.
//! Skip instances count with their weight but deliver nothing, so a slow
//! ring never stalls a learner for long (provided its coordinator keeps
//! proposing skips).

use ringpaxos::Batch;
use std::collections::VecDeque;

/// One entry of a ring's in-order stream: a decided batch plus the number
/// of logical instances it stands for (`1` for a normal batch, the skip
/// weight for a skip batch).
#[derive(Clone, Debug)]
pub struct MergeEntry {
    /// Decided batch (empty for skips).
    pub batch: Batch,
    /// Logical instances this entry consumes in the merge.
    pub weight: u64,
}

/// Deterministic round-robin merge across subscribed rings.
#[derive(Debug)]
pub struct DeterministicMerge {
    m: u64,
    queues: Vec<VecDeque<MergeEntry>>,
    /// Ring currently being drained and its remaining credit.
    current: usize,
    credit: u64,
}

impl DeterministicMerge {
    /// Creates a merge over `rings` subscribed rings delivering `m`
    /// consecutive logical instances per ring per turn.
    ///
    /// # Panics
    /// Panics if `rings == 0` or `m == 0`.
    pub fn new(rings: usize, m: u64) -> DeterministicMerge {
        assert!(rings > 0 && m > 0, "merge needs at least one ring and m >= 1");
        DeterministicMerge {
            m,
            queues: (0..rings).map(|_| VecDeque::new()).collect(),
            current: 0,
            credit: m,
        }
    }

    /// Appends the next in-order entry of ring `ring`.
    pub fn push(&mut self, ring: usize, entry: MergeEntry) {
        self.queues[ring].push_back(entry);
    }

    /// Pops the next deliverable batch in merge order, consuming skips
    /// silently. Returns `None` when the merge is blocked waiting for the
    /// current ring.
    pub fn pop(&mut self) -> Option<(usize, Batch)> {
        loop {
            let ring = self.current;
            let credit = self.credit;
            let q = &mut self.queues[ring];
            let front = q.front_mut()?;
            if front.weight <= credit {
                let entry = q.pop_front().expect("front checked");
                self.credit -= entry.weight;
                if self.credit == 0 {
                    self.advance();
                }
                if entry.batch.is_empty() {
                    continue; // a pure skip: nothing to deliver
                }
                return Some((ring, entry.batch));
            }
            // A heavy skip spanning several turns: consume this turn's
            // credit and move on.
            front.weight -= credit;
            self.advance();
        }
    }

    fn advance(&mut self) {
        self.current = (self.current + 1) % self.queues.len();
        self.credit = self.m;
    }

    /// Entries buffered and not yet merged (back-pressure signal).
    pub fn buffered(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Entries buffered for one ring.
    pub fn buffered_in(&self, ring: usize) -> usize {
        self.queues[ring].len()
    }

    /// The ring the merge is waiting on (the head-of-line blocker when
    /// [`DeterministicMerge::pop`] returns `None`).
    pub fn waiting_on(&self) -> usize {
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(weight: u64, vals: usize) -> MergeEntry {
        let v = (0..vals)
            .map(|i| ringpaxos::Value {
                id: abcast::MsgId(i as u64),
                proposer: simnet::ids::NodeId(0),
                seq: i as u64,
                bytes: 10,
                submitted: simnet::time::Time::ZERO,
                mask: ringpaxos::value::ALL_PARTITIONS,
            })
            .collect::<Vec<_>>();
        MergeEntry { batch: ringpaxos::BatchData::new(v), weight }
    }

    #[test]
    fn round_robin_with_m_1() {
        let mut m = DeterministicMerge::new(2, 1);
        m.push(0, entry(1, 1));
        m.push(0, entry(1, 1));
        m.push(1, entry(1, 1));
        m.push(1, entry(1, 1));
        let order: Vec<usize> = std::iter::from_fn(|| m.pop().map(|(r, _)| r)).collect();
        assert_eq!(order, vec![0, 1, 0, 1]);
    }

    #[test]
    fn m_2_takes_two_per_turn() {
        let mut m = DeterministicMerge::new(2, 2);
        for _ in 0..4 {
            m.push(0, entry(1, 1));
            m.push(1, entry(1, 1));
        }
        let order: Vec<usize> = std::iter::from_fn(|| m.pop().map(|(r, _)| r)).collect();
        assert_eq!(order, vec![0, 0, 1, 1, 0, 0, 1, 1]);
    }

    #[test]
    fn blocks_on_missing_ring() {
        let mut m = DeterministicMerge::new(2, 1);
        m.push(0, entry(1, 1));
        assert!(m.pop().is_some());
        // Now waiting on ring 1, which has nothing.
        m.push(0, entry(1, 1));
        assert!(m.pop().is_none());
        assert_eq!(m.waiting_on(), 1);
        assert_eq!(m.buffered(), 1);
        m.push(1, entry(1, 1));
        assert_eq!(m.pop().map(|(r, _)| r), Some(1));
        assert_eq!(m.pop().map(|(r, _)| r), Some(0));
    }

    #[test]
    fn skips_consume_without_delivering() {
        let mut m = DeterministicMerge::new(2, 1);
        m.push(0, entry(1, 1));
        m.push(1, MergeEntry { batch: ringpaxos::BatchData::empty(), weight: 1 });
        m.push(0, entry(1, 1));
        m.push(1, MergeEntry { batch: ringpaxos::BatchData::empty(), weight: 1 });
        let order: Vec<usize> = std::iter::from_fn(|| m.pop().map(|(r, _)| r)).collect();
        // Only ring 0's batches surface; ring 1's skips pass silently.
        assert_eq!(order, vec![0, 0]);
    }

    #[test]
    fn heavy_skip_spans_multiple_turns() {
        let mut m = DeterministicMerge::new(2, 1);
        // Ring 1 has a skip worth 3 turns.
        m.push(1, MergeEntry { batch: ringpaxos::BatchData::empty(), weight: 3 });
        for _ in 0..4 {
            m.push(0, entry(1, 1));
        }
        let order: Vec<usize> = std::iter::from_fn(|| m.pop().map(|(r, _)| r)).collect();
        // All four of ring 0's batches deliver; the heavy skip absorbs
        // ring 1's turns in between without blocking.
        assert_eq!(order, vec![0, 0, 0, 0]);
    }

    #[test]
    fn deterministic_across_push_orders() {
        // The merge result depends only on per-ring sequences, not on the
        // interleaving of pushes.
        let seq = |push_zero_first: bool| {
            let mut m = DeterministicMerge::new(2, 1);
            if push_zero_first {
                for i in 0..3 {
                    m.push(0, entry(1, i + 1));
                }
                for i in 0..3 {
                    m.push(1, entry(1, i + 1));
                }
            } else {
                for i in 0..3 {
                    m.push(1, entry(1, i + 1));
                }
                for i in 0..3 {
                    m.push(0, entry(1, i + 1));
                }
            }
            std::iter::from_fn(|| m.pop().map(|(r, b)| (r, b.len()))).collect::<Vec<_>>()
        };
        assert_eq!(seq(true), seq(false));
    }

    #[test]
    #[should_panic(expected = "at least one ring")]
    fn zero_rings_rejected() {
        let _ = DeterministicMerge::new(0, 1);
    }
}
