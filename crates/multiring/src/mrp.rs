//! Multi-Ring Paxos deployment: an ensemble of independent M-Ring Paxos
//! rings (one per group) plus learners that merge them deterministically
//! (ch. 5, Algorithm 1).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use abcast::{shared_log, Pacer, SharedLog};
use ringpaxos::mring::MRingProcess;
use ringpaxos::{MRingConfig, SkipConfig, StorageMode};
use simnet::prelude::*;

use crate::learner::MultiRingLearner;

struct Idle;
impl Actor for Idle {
    fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
}

/// Options for [`deploy_multiring`].
#[derive(Clone, Debug)]
pub struct MultiRingOptions {
    /// Number of rings (= groups).
    pub n_rings: usize,
    /// Acceptors per ring (coordinator included).
    pub ring_size: usize,
    /// Proposer nodes per ring.
    pub proposers_per_ring: usize,
    /// Offered load per ring, bits per second (split across proposers).
    pub rates_per_ring_bps: Vec<u64>,
    /// Application message size.
    pub msg_bytes: u32,
    /// Expected maximum consensus rate λ (instances/s); `0` disables
    /// skip generation.
    pub lambda_per_sec: u64,
    /// Sampling interval ∆.
    pub delta: Dur,
    /// Merge parameter M (logical instances per ring per turn).
    pub m: u64,
    /// Acceptor persistence for every ring.
    pub storage: StorageMode,
    /// Learner subscriptions: `learners[i]` lists the ring indexes
    /// learner `i` subscribes to.
    pub learners: Vec<Vec<usize>>,
}

impl Default for MultiRingOptions {
    fn default() -> Self {
        MultiRingOptions {
            n_rings: 2,
            ring_size: 3,
            proposers_per_ring: 1,
            rates_per_ring_bps: vec![100_000_000; 2],
            msg_bytes: 8192,
            lambda_per_sec: 9000,
            delta: Dur::millis(1),
            m: 1,
            storage: StorageMode::InMemory,
            learners: vec![vec![0, 1]],
        }
    }
}

/// One deployed ring of the ensemble.
pub struct RingHandle {
    /// The ring's configuration (group, members).
    pub cfg: MRingConfig,
    /// Acceptors (last = coordinator).
    pub ring: Vec<NodeId>,
    /// Proposer nodes of this ring.
    pub proposers: Vec<NodeId>,
    /// Live rate controls, one per proposer (bits/s; 0 pauses).
    pub rate_controls: Vec<Arc<AtomicU64>>,
}

impl RingHandle {
    /// The ring's coordinator node.
    pub fn coordinator(&self) -> NodeId {
        self.cfg.coordinator()
    }

    /// Sets the offered load of the whole ring (split across proposers).
    pub fn set_rate(&self, total_bps: u64) {
        let per = (total_bps / self.rate_controls.len() as u64).max(1);
        for c in &self.rate_controls {
            c.store(if total_bps == 0 { 0 } else { per }, Ordering::Relaxed);
        }
    }
}

/// A deployed Multi-Ring Paxos ensemble.
pub struct MultiRingDeployment {
    /// The rings, in group-id (merge) order.
    pub rings: Vec<RingHandle>,
    /// Multi-ring learner nodes, in `options.learners` order.
    pub learners: Vec<NodeId>,
    /// Delivery log indexed like `learners`.
    pub log: SharedLog,
}

/// Deploys Multi-Ring Paxos: `n_rings` independent M-Ring Paxos instances
/// plus deterministic-merge learners.
pub fn deploy_multiring(sim: &mut Sim, opts: &MultiRingOptions) -> MultiRingDeployment {
    assert_eq!(opts.rates_per_ring_bps.len(), opts.n_rings, "one rate per ring required");
    // Allocate learner nodes first so ring configs can reference them.
    let learner_nodes: Vec<NodeId> =
        (0..opts.learners.len()).map(|_| sim.add_node(Box::new(Idle))).collect();

    let mut rings = Vec::new();
    let mut ring_cfgs: Vec<MRingConfig> = Vec::new();
    for r in 0..opts.n_rings {
        let ring: Vec<NodeId> = (0..opts.ring_size).map(|_| sim.add_node(Box::new(Idle))).collect();
        let proposers: Vec<NodeId> =
            (0..opts.proposers_per_ring).map(|_| sim.add_node(Box::new(Idle))).collect();
        let group = sim.add_group();

        // Ring learners: its proposers (they observe their own values)
        // plus every multi-ring learner subscribed to this ring.
        let mut ring_learners = proposers.clone();
        for (li, subs) in opts.learners.iter().enumerate() {
            if subs.contains(&r) {
                ring_learners.push(learner_nodes[li]);
            }
        }
        let mut cfg = MRingConfig::new(ring.clone(), ring_learners.clone(), group);
        cfg.storage = opts.storage;
        if opts.lambda_per_sec > 0 {
            cfg.skip = Some(SkipConfig { lambda_per_sec: opts.lambda_per_sec, delta: opts.delta });
        }
        for &n in ring.iter().chain(&ring_learners) {
            sim.subscribe(n, group);
        }

        // Ring-local delivery log for the proposers only.
        let local_log = shared_log(ring_learners.len());
        for &n in &ring {
            sim.replace_actor(n, Box::new(MRingProcess::new(cfg.clone(), n, None, None)));
        }
        let per_proposer = (opts.rates_per_ring_bps[r] / opts.proposers_per_ring as u64).max(1);
        let mut rate_controls = Vec::new();
        for &p in &proposers {
            let pacer = Pacer::new(per_proposer, opts.msg_bytes, 1);
            let ctl = Arc::new(AtomicU64::new(per_proposer));
            rate_controls.push(ctl.clone());
            let actor = MRingProcess::new(cfg.clone(), p, Some(pacer), Some(local_log.clone()))
                .with_rate_control(ctl);
            sim.replace_actor(p, Box::new(actor));
        }
        ring_cfgs.push(cfg.clone());
        rings.push(RingHandle { cfg, ring, proposers, rate_controls });
    }

    // Instantiate the merge learners.
    let log = shared_log(opts.learners.len());
    for (li, subs) in opts.learners.iter().enumerate() {
        let mut sorted = subs.clone();
        sorted.sort_unstable();
        let cfgs: Vec<MRingConfig> = sorted.iter().map(|&r| ring_cfgs[r].clone()).collect();
        let actor = MultiRingLearner::new(learner_nodes[li], li, cfgs, opts.m, Some(log.clone()));
        sim.replace_actor(learner_nodes[li], Box::new(actor));
    }

    MultiRingDeployment { rings, learners: learner_nodes, log }
}
