//! The Multi-Ring Paxos learner: follows several M-Ring Paxos rings and
//! delivers their decided batches through the deterministic merge.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::sync::Mutex;

use abcast::{MsgId, SharedLog};
use paxos::msg::{InstanceId, Round};
use ringpaxos::msg::MMsg;
use ringpaxos::{Batch, MRingConfig};
use simnet::prelude::*;

use crate::merge::{DeterministicMerge, MergeEntry};

/// Delivery latency recorded by Multi-Ring Paxos learners (kept apart
/// from the per-ring `abcast.latency` recorded by ring-local proposers).
pub const MRP_LATENCY: &str = "mrp.latency";
/// Entries a learner holds buffered in its merge (sampled as a counter of
/// peak occupancy increments for test observability).
pub const MRP_STALLS: &str = "mrp.stalls";

/// A ring-tagged delivery sequence: `(ring index, message)` in merge
/// order. P-SMR (ch. 6) consumes this to route each delivery to the
/// worker thread subscribed to the originating group.
pub type RingSink = Arc<Mutex<Vec<(u8, MsgId)>>>;

/// Creates an empty [`RingSink`].
pub fn ring_sink() -> RingSink {
    Arc::new(Mutex::new(Vec::new()))
}

const T_RETRANS: u64 = 6 << 56;
const T_GC: u64 = 3 << 56;
const T_FLOW: u64 = 4 << 56;

/// Per-ring in-order stream reassembly (payloads + decisions + gaps).
struct Follower {
    cfg: MRingConfig,
    payloads: BTreeMap<InstanceId, (Round, Batch, u64)>,
    decided: BTreeMap<InstanceId, Round>,
    next: InstanceId,
    prev_horizon: InstanceId,
    applied_reported: InstanceId,
    slowdown_active: bool,
}

impl Follower {
    fn new(cfg: MRingConfig) -> Follower {
        Follower {
            cfg,
            payloads: BTreeMap::new(),
            decided: BTreeMap::new(),
            next: InstanceId(0),
            prev_horizon: InstanceId(0),
            applied_reported: InstanceId(0),
            slowdown_active: false,
        }
    }

    fn store(&mut self, instance: InstanceId, batch: &Batch, weight: u64, round: Round) {
        if instance >= self.next {
            match self.payloads.entry(instance) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert((round, batch.clone(), weight));
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    if round > e.get().0 {
                        e.insert((round, batch.clone(), weight));
                    }
                }
            }
        }
    }

    fn decide(&mut self, instances: &[(InstanceId, u32)], round: Round) {
        for &(i, _mask) in instances {
            if i >= self.next {
                let e = self.decided.entry(i).or_insert(round);
                *e = (*e).max(round);
            }
        }
    }

    /// Authoritative payload+decision from an acceptor's decided vote.
    fn authoritative(&mut self, instance: InstanceId, batch: &Batch, weight: u64, round: Round) {
        if instance >= self.next {
            self.payloads.insert(instance, (round, batch.clone(), weight));
            self.decided.insert(instance, round);
        }
    }

    /// Pops the next consecutive ready entry, if any.
    fn pop_ready(&mut self) -> Option<MergeEntry> {
        let i = self.next;
        let ready = match (self.decided.get(&i), self.payloads.get(&i)) {
            (Some(dr), Some((pr, _, _))) => dr == pr,
            _ => false,
        };
        if !ready {
            return None;
        }
        let (_, batch, weight) = self.payloads.remove(&i).expect("payload checked");
        self.decided.remove(&i);
        self.next = i.next();
        Some(MergeEntry { batch, weight })
    }

    fn missing(&mut self) -> Vec<InstanceId> {
        let horizon = self
            .payloads
            .iter()
            .next_back()
            .map(|(&i, _)| i)
            .max(self.decided.iter().next_back().map(|(&i, _)| i))
            .unwrap_or(self.next);
        let stale = self.prev_horizon.min(horizon);
        let mut out = Vec::new();
        for i in self.next.0..stale.0 {
            let i = InstanceId(i);
            let ready = match (self.decided.get(&i), self.payloads.get(&i)) {
                (Some(dr), Some((pr, _, _))) => dr == pr,
                _ => false,
            };
            if !ready {
                out.push(i);
                if out.len() >= 64 {
                    break;
                }
            }
        }
        self.prev_horizon = horizon;
        out
    }
}

/// A learner subscribed to one or more rings (groups), delivering through
/// the deterministic merge of ch. 5.
pub struct MultiRingLearner {
    me: NodeId,
    index: usize,
    /// Followers in group-id order (the merge order).
    followers: Vec<Follower>,
    group_to_ring: HashMap<GroupId, usize>,
    node_to_ring: HashMap<NodeId, usize>,
    merge: DeterministicMerge,
    log: Option<SharedLog>,
    ring_sink: Option<RingSink>,
    /// Merge entries buffered beyond which the learner asks its rings to
    /// slow down.
    flow_threshold: usize,
}

impl MultiRingLearner {
    /// Creates a learner at `me` (log index `index`) subscribed to the
    /// given ring configurations (must be sorted by group id), delivering
    /// `m` logical instances per ring per merge turn.
    pub fn new(
        me: NodeId,
        index: usize,
        rings: Vec<MRingConfig>,
        m: u64,
        log: Option<SharedLog>,
    ) -> MultiRingLearner {
        let mut group_to_ring = HashMap::new();
        let mut node_to_ring = HashMap::new();
        for (i, cfg) in rings.iter().enumerate() {
            group_to_ring.insert(cfg.group, i);
            for &a in cfg.ring.iter().chain(&cfg.spares) {
                node_to_ring.insert(a, i);
            }
        }
        let merge = DeterministicMerge::new(rings.len(), m);
        MultiRingLearner {
            me,
            index,
            followers: rings.into_iter().map(Follower::new).collect(),
            group_to_ring,
            node_to_ring,
            merge,
            log,
            ring_sink: None,
            flow_threshold: 4096,
        }
    }

    /// Overrides the merge-buffer flow-control threshold.
    pub fn with_flow_threshold(mut self, entries: usize) -> MultiRingLearner {
        self.flow_threshold = entries;
        self
    }

    /// Additionally records deliveries as `(ring, message)` pairs in
    /// merge order (the stream P-SMR worker threads consume).
    pub fn with_ring_sink(mut self, sink: RingSink) -> MultiRingLearner {
        self.ring_sink = Some(sink);
        self
    }

    fn ring_of(&self, env: &Envelope) -> Option<usize> {
        match env.transport {
            Transport::Multicast(g) => self.group_to_ring.get(&g).copied(),
            _ => self.node_to_ring.get(&env.src).copied(),
        }
    }

    /// Files one message into its ring's follower without draining the
    /// merge. Returns whether follower state changed in a way that can
    /// make merge progress (the caller then runs [`Self::pump`] — once
    /// per message on the unary path, once per burst on the batch path).
    fn ingest(&mut self, env: &Envelope) -> bool {
        let Some(msg) = env.payload.downcast_ref::<MMsg>() else { return false };
        let Some(ring) = self.ring_of(env) else { return false };
        match msg {
            MMsg::Phase2a { instance, round, batch, decisions, skip, .. } => {
                let weight = (*skip).max(1);
                self.followers[ring].store(*instance, batch, weight, *round);
                self.followers[ring].decide(decisions, *round);
                true
            }
            MMsg::Decision { instances, round, .. } => {
                self.followers[ring].decide(instances, *round);
                true
            }
            MMsg::RetransRep { instance, batch, decided, round, skip, .. } => {
                let weight = (*skip).max(1);
                if *decided {
                    self.followers[ring].authoritative(*instance, batch, weight, *round);
                } else {
                    self.followers[ring].store(*instance, batch, weight, *round);
                }
                true
            }
            MMsg::NewRing { ring: new_ring, .. } => {
                // Track ring membership changes for retransmission targets.
                for &a in new_ring {
                    self.node_to_ring.insert(a, ring);
                }
                self.followers[ring].cfg.ring = new_ring.clone();
                false
            }
            _ => false,
        }
    }

    fn pump(&mut self, ctx: &mut Ctx) {
        // Feed every ring's consecutive ready entries into the merge.
        for ring in 0..self.followers.len() {
            while let Some(entry) = self.followers[ring].pop_ready() {
                self.merge.push(ring, entry);
            }
        }
        // Drain the merge in deterministic order.
        while let Some((ring, batch)) = self.merge.pop() {
            if ctx.probes_enabled() {
                // One merge-release event per popped batch: the ring's
                // group id in the high word, the batch size in the low —
                // the Perfetto track of the cross-ring merge order.
                let group = self.followers[ring].cfg.group.0 as u64;
                ctx.probe(probe::code::MERGE_DELIVER, (group << 32) | batch.values().len() as u64);
            }
            for v in batch.iter() {
                if let Some(log) = self.log.as_ref() {
                    log.lock().unwrap().deliver(self.index, v.id);
                }
                if let Some(sink) = self.ring_sink.as_ref() {
                    sink.lock().unwrap().push((ring as u8, v.id));
                }
                ctx.counter_add(abcast::metric::DELIVERED_BYTES, v.bytes as u64);
                ctx.counter_add(abcast::metric::DELIVERED_MSGS, 1);
                // Merge delivery strictly follows submission; `since`
                // debug-asserts that instead of masking inversions.
                ctx.record_latency(MRP_LATENCY, ctx.now().since(v.submitted));
            }
        }
        if self.merge.buffered() > self.flow_threshold {
            ctx.counter_add(MRP_STALLS, 1);
        }

        // Per-ring back-pressure towards the ring that floods us.
        for ring in 0..self.followers.len() {
            let over = self.merge.buffered_in(ring) > self.flow_threshold;
            let f = &mut self.followers[ring];
            if over && !f.slowdown_active {
                f.slowdown_active = true;
                let pref = f.cfg.preferential_acceptor(self.index);
                ctx.udp_send(pref, MMsg::SlowDown, f.cfg.ctl_bytes);
            } else if !over {
                f.slowdown_active = false;
            }
        }
    }
}

impl Actor for MultiRingLearner {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(Dur::millis(20), TimerToken(T_RETRANS));
        ctx.set_timer(Dur::millis(100), TimerToken(T_GC));
        ctx.set_timer(Dur::millis(10), TimerToken(T_FLOW));
    }

    fn on_message(&mut self, env: &Envelope, ctx: &mut Ctx) {
        if self.ingest(env) {
            self.pump(ctx);
        }
    }

    /// The multi-ring fan-in is the heaviest same-instant burst in the
    /// system: every subscribed ring's coordinator multicasts into this
    /// learner, and batch timeouts align deliveries across rings. The
    /// batch path ingests the whole run first and pumps the
    /// deterministic merge once — the merge drains identical entries in
    /// identical order (it is a pure function of follower state), but
    /// the per-message re-scan of every follower's ready prefix and the
    /// per-message flow-control sweep collapse into one pass per burst.
    fn on_batch(&mut self, envs: &[Envelope], ctx: &mut Ctx) {
        let mut pump = false;
        for env in envs {
            pump |= self.ingest(env);
        }
        if pump {
            self.pump(ctx);
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx) {
        match token.0 {
            t if t == T_RETRANS => {
                let me = self.me;
                let index = self.index;
                for f in &mut self.followers {
                    let missing = f.missing();
                    if !missing.is_empty() {
                        let pref = f.cfg.preferential_acceptor(index);
                        ctx.udp_send(
                            pref,
                            MMsg::RetransReq { from: me, instances: missing },
                            f.cfg.ctl_bytes,
                        );
                    }
                }
                ctx.set_timer(Dur::millis(20), TimerToken(T_RETRANS));
            }
            t if t == T_GC => {
                let me = self.me;
                let index = self.index;
                for f in &mut self.followers {
                    if f.next > f.applied_reported {
                        f.applied_reported = f.next;
                        let pref = f.cfg.preferential_acceptor(index);
                        ctx.udp_send(
                            pref,
                            MMsg::Version { learner: me, applied: f.next },
                            f.cfg.ctl_bytes,
                        );
                    }
                }
                ctx.set_timer(Dur::millis(100), TimerToken(T_GC));
            }
            t if t == T_FLOW => {
                self.pump(ctx);
                ctx.set_timer(Dur::millis(10), TimerToken(T_FLOW));
            }
            _ => {}
        }
    }
}
