//! End-to-end tests for Multi-Ring Paxos.

use abcast::metric;
use multiring::{deploy_multiring, MultiRingOptions, MRP_LATENCY};
use ringpaxos::StorageMode;
use simnet::prelude::*;

fn delivered_mbps(sim: &Sim, node: NodeId, window: Dur) -> f64 {
    mbps(sim.metrics().counter(node, metric::DELIVERED_BYTES), window)
}

#[test]
fn single_learner_merges_two_rings() {
    let mut sim = Sim::new(SimConfig::default());
    let opts = MultiRingOptions {
        n_rings: 2,
        rates_per_ring_bps: vec![100_000_000, 100_000_000],
        learners: vec![vec![0, 1]],
        ..MultiRingOptions::default()
    };
    let d = deploy_multiring(&mut sim, &opts);
    sim.run_until(Time::from_secs(2));
    let msgs = sim.metrics().counter(d.learners[0], metric::DELIVERED_MSGS);
    assert!(msgs > 2000, "learner delivered only {msgs}");
    // Roughly both rings' load should arrive.
    let tput = delivered_mbps(&sim, d.learners[0], Dur::secs(2));
    assert!(tput > 150.0, "merged throughput {tput:.0} Mbps, expected ~200");
}

#[test]
fn learners_with_shared_groups_respect_partial_order() {
    // Learner 0 subscribes to {0,1}, learner 1 to {1,2}, learner 2 to
    // {0,1,2}: common messages must be ordered consistently (§2.2.4).
    let mut sim = Sim::new(SimConfig::default());
    let opts = MultiRingOptions {
        n_rings: 3,
        rates_per_ring_bps: vec![50_000_000; 3],
        learners: vec![vec![0, 1], vec![1, 2], vec![0, 1, 2]],
        ..MultiRingOptions::default()
    };
    let d = deploy_multiring(&mut sim, &opts);
    sim.run_until(Time::from_secs(1));
    let log = d.log.lock().unwrap();
    assert!(log.total_deliveries() > 1000);
    log.check_partial_order().expect("uniform partial order");
}

#[test]
fn same_subscriptions_mean_same_order() {
    let mut sim = Sim::new(SimConfig::default());
    let opts = MultiRingOptions {
        n_rings: 2,
        rates_per_ring_bps: vec![80_000_000, 40_000_000],
        learners: vec![vec![0, 1], vec![0, 1]],
        ..MultiRingOptions::default()
    };
    let d = deploy_multiring(&mut sim, &opts);
    sim.run_until(Time::from_secs(1));
    let log = d.log.lock().unwrap();
    // Learners with identical subscriptions see a total order.
    log.check_total_order().expect("identical subscriptions, identical order");
}

#[test]
fn throughput_scales_with_rings() {
    // Fig 5.4: one group per learner — aggregate delivery scales linearly.
    let run = |n_rings: usize| -> f64 {
        let mut sim = Sim::new(SimConfig::default());
        let opts = MultiRingOptions {
            n_rings,
            rates_per_ring_bps: vec![600_000_000; n_rings],
            learners: (0..n_rings).map(|r| vec![r]).collect(),
            ..MultiRingOptions::default()
        };
        let d = deploy_multiring(&mut sim, &opts);
        sim.run_until(Time::from_secs(2));
        d.learners.iter().map(|&l| delivered_mbps(&sim, l, Dur::secs(2))).sum()
    };
    let one = run(1);
    let four = run(4);
    assert!(four > 3.0 * one, "aggregate should scale: 1 ring {one:.0}, 4 rings {four:.0} Mbps");
}

#[test]
fn slow_ring_does_not_stall_learner_thanks_to_skips() {
    let mut sim = Sim::new(SimConfig::default());
    let opts = MultiRingOptions {
        n_rings: 2,
        // Ring 1 is nearly idle.
        rates_per_ring_bps: vec![200_000_000, 1_000],
        lambda_per_sec: 9000,
        learners: vec![vec![0, 1]],
        ..MultiRingOptions::default()
    };
    let d = deploy_multiring(&mut sim, &opts);
    sim.run_until(Time::from_secs(2));
    let tput = delivered_mbps(&sim, d.learners[0], Dur::secs(2));
    assert!(tput > 150.0, "skips must keep the merge moving: {tput:.0} Mbps");
    // Skips must actually have been proposed by ring 1's coordinator.
    let skips = sim.metrics().counter(d.rings[1].coordinator(), "rp.skips");
    assert!(skips > 1000, "ring 1 proposed only {skips} skips");
}

#[test]
fn without_skips_an_imbalanced_learner_stalls() {
    // λ = 0 disables skip generation: the merge starves on the idle ring
    // (the λ=0 curve of Fig 5.8).
    let mut sim = Sim::new(SimConfig::default());
    let opts = MultiRingOptions {
        n_rings: 2,
        rates_per_ring_bps: vec![200_000_000, 1_000],
        lambda_per_sec: 0,
        learners: vec![vec![0, 1]],
        ..MultiRingOptions::default()
    };
    let d = deploy_multiring(&mut sim, &opts);
    sim.run_until(Time::from_secs(2));
    let tput = delivered_mbps(&sim, d.learners[0], Dur::secs(2));
    assert!(tput < 50.0, "learner should starve without skips: {tput:.0} Mbps");
}

#[test]
fn larger_m_increases_latency_not_throughput() {
    let run = |m: u64| -> (Dur, f64) {
        let mut sim = Sim::new(SimConfig::default());
        let opts = MultiRingOptions {
            n_rings: 2,
            rates_per_ring_bps: vec![100_000_000, 100_000_000],
            m,
            learners: vec![vec![0, 1]],
            ..MultiRingOptions::default()
        };
        let d = deploy_multiring(&mut sim, &opts);
        sim.run_until(Time::from_secs(2));
        (sim.metrics().latency(MRP_LATENCY).mean, delivered_mbps(&sim, d.learners[0], Dur::secs(2)))
    };
    let (lat_1, tput_1) = run(1);
    let (lat_100, tput_100) = run(100);
    assert!(lat_100 > lat_1, "M=100 latency {lat_100:?} should exceed M=1 {lat_1:?}");
    assert!(
        (tput_100 - tput_1).abs() / tput_1 < 0.2,
        "throughput should not depend on M: {tput_1:.0} vs {tput_100:.0}"
    );
}

#[test]
fn coordinator_pause_stalls_then_recovers() {
    // Fig 5.11: pausing one ring's coordinator halts merged delivery —
    // the learner cannot merge past the silent ring. Recovery comes from
    // whichever happens first: the staggered acceptor takeover (§3.3.5,
    // "it takes much less time to detect the failure of a coordinator
    // and replace it with an operational acceptor" — ch. 5 §5.4.7) or
    // the paused process restarting, as in the paper's forced trace.
    let mut sim = Sim::new(SimConfig::default());
    let opts = MultiRingOptions {
        n_rings: 2,
        rates_per_ring_bps: vec![150_000_000, 150_000_000],
        learners: vec![vec![0, 1]],
        ..MultiRingOptions::default()
    };
    let d = deploy_multiring(&mut sim, &opts);
    sim.run_until(Time::from_secs(1));
    let coord = d.rings[0].coordinator();
    let at_pause = sim.metrics().counter(d.learners[0], metric::DELIVERED_MSGS);

    sim.set_node_up(coord, false);
    // Before the first staggered takeover delay (suspicion timeout,
    // 200 ms) the merge is stalled: ring-1 messages buffer unmerged.
    sim.run_until(Time::from_millis(1040));
    let during = sim.metrics().counter(d.learners[0], metric::DELIVERED_MSGS);
    sim.run_until(Time::from_millis(1160));
    let during2 = sim.metrics().counter(d.learners[0], metric::DELIVERED_MSGS);
    let stall_rate = (during2 - during) as f64 / 0.12;
    assert!(stall_rate < 2000.0, "delivery should stall during pause: {stall_rate:.0}/s");

    sim.restart_node(coord);
    sim.run_until(Time::from_secs(3));
    let after = sim.metrics().counter(d.learners[0], metric::DELIVERED_MSGS);
    assert!(after > at_pause + 1000, "delivery must resume after recovery: {at_pause} -> {after}");
    let log = d.log.lock().unwrap();
    log.check_total_order().expect("order preserved across pause");
}

#[test]
fn recoverable_rings_are_disk_bound_but_scale() {
    let run = |n_rings: usize| -> f64 {
        let mut sim = Sim::new(SimConfig::default());
        let opts = MultiRingOptions {
            n_rings,
            rates_per_ring_bps: vec![600_000_000; n_rings],
            storage: StorageMode::AsyncDisk,
            learners: (0..n_rings).map(|r| vec![r]).collect(),
            ..MultiRingOptions::default()
        };
        let d = deploy_multiring(&mut sim, &opts);
        sim.run_until(Time::from_secs(2));
        d.learners.iter().map(|&l| delivered_mbps(&sim, l, Dur::secs(2))).sum()
    };
    let one = run(1);
    let three = run(3);
    assert!(one < 700.0, "async-disk single ring should be below wire: {one:.0} Mbps");
    assert!(three > 2.0 * one, "disk-bound rings still scale: {one:.0} -> {three:.0} Mbps");
}

#[test]
fn deterministic_multiring_runs() {
    let run = || {
        let mut sim = Sim::new(SimConfig::default());
        let opts = MultiRingOptions::default();
        let d = deploy_multiring(&mut sim, &opts);
        sim.run_until(Time::from_millis(700));
        sim.metrics().counter(d.learners[0], metric::DELIVERED_MSGS)
    };
    assert_eq!(run(), run());
}

#[test]
fn lossy_network_keeps_learner_merges_identical() {
    // Regression: a retransmitted 2A must repeat the instance's original
    // skip weight. If a learner recovers a skip batch with a different
    // weight than the original multicast carried, its deterministic
    // merge counts different logical instances and its delivery order
    // silently diverges from the other learners'.
    let mut cfg = SimConfig::default();
    cfg.random_loss = 0.03;
    let mut sim = Sim::new(cfg);
    let opts = MultiRingOptions {
        n_rings: 2,
        rates_per_ring_bps: vec![120_000_000, 40_000_000], // skips active on ring 1
        learners: vec![vec![0, 1], vec![0, 1], vec![0, 1]],
        lambda_per_sec: 9000,
        ..MultiRingOptions::default()
    };
    let d = deploy_multiring(&mut sim, &opts);
    // Stop the offered load, then let retransmissions settle.
    for r in &d.rings {
        r.set_rate(120_000_000);
    }
    sim.run_until(Time::from_millis(1200));
    for r in &d.rings {
        r.set_rate(0);
    }
    sim.run_until(Time::from_secs(4));

    let log = d.log.lock().unwrap();
    assert!(log.total_deliveries() > 1000, "too little delivered under loss");
    log.check_total_order().expect("learners' merged orders diverged under loss");
}
