//! # paxos — Basic Paxos roles (thesis Algorithm 1)
//!
//! Transport-agnostic implementations of the three Paxos roles the thesis
//! builds on: [`coordinator::Coordinator`], [`acceptor::Acceptor`], and
//! [`learner::Learner`]. Each role is a pure state machine: feed it a
//! message, get back the messages to send. The Ring Paxos protocols
//! (`ringpaxos` crate) reuse these rules with different communication
//! topologies; the unit tests and property tests here pin down the safety
//! core everything else relies on.
//!
//! ```
//! use paxos::prelude::*;
//!
//! let mut coord: Coordinator<&str> = Coordinator::new(0, 3);
//! let mut acceptors: Vec<Acceptor<&str>> = (0..3).map(|_| Acceptor::new()).collect();
//! let mut learner: Learner<&str> = Learner::new();
//!
//! // Phase 1 (pre-executed once for all instances).
//! let PaxosMsg::Phase1a { round } = coord.start_phase1(Round::ZERO) else { unreachable!() };
//! for (id, a) in acceptors.iter_mut().enumerate() {
//!     if let Some(PaxosMsg::Phase1b { round, votes }) = a.receive_1a(round) {
//!         coord.receive_1b(id as u32, round, &votes);
//!     }
//! }
//!
//! // Phase 2 for one value.
//! let (instance, msg) = coord.propose("hello").unwrap();
//! let PaxosMsg::Phase2a { round, value, .. } = msg else { unreachable!() };
//! for (id, a) in acceptors.iter_mut().enumerate() {
//!     if let Some(PaxosMsg::Phase2b { instance, round }) = a.receive_2a(instance, round, value) {
//!         if let Some(PaxosMsg::Decision { instance, value }) =
//!             coord.receive_2b(id as u32, instance, round)
//!         {
//!             learner.on_decision(instance, value);
//!         }
//!     }
//! }
//! assert_eq!(learner.deliver_next(), Some((InstanceId(0), "hello")));
//! ```

pub mod acceptor;
pub mod coordinator;
pub mod learner;
pub mod msg;
pub mod window;

/// Convenient glob import.
pub mod prelude {
    pub use crate::acceptor::{Acceptor, Vote};
    pub use crate::coordinator::{Coordinator, Phase1State};
    pub use crate::learner::Learner;
    pub use crate::msg::{quorum, InstanceId, PaxosMsg, Round};
    pub use crate::window::Window;
}
