//! The coordinator role (Tasks 1, 3 and 5 of Algorithm 1).
//!
//! The coordinator pre-executes Phase 1 for an open-ended range of
//! instances (the standard Paxos optimization, §3.2), then runs one
//! Phase 2 per value, deciding when a majority quorum of Phase 2B
//! messages arrives.
//!
//! Per-instance bookkeeping lives in a dense sliding [`Window`]
//! (instances are proposed contiguously and GC'd from below, §3.3.7), so
//! the per-packet operations ([`Coordinator::receive_2b`],
//! [`Coordinator::is_decided`]) are array indexing instead of tree
//! searches, and the Phase 2B quorum is a bitmask instead of a per-vote
//! tree allocation.

use std::collections::BTreeMap;

use crate::msg::{quorum, InstanceId, PaxosMsg, Round};
use crate::window::Window;

/// Phase-1 progress of the coordinator's current round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase1State {
    /// No Phase 1 in progress (round not started or superseded).
    Idle,
    /// Waiting for Phase 1B from a majority quorum.
    AwaitingPromises,
    /// A quorum promised: Phase 2 may run for any instance.
    Ready,
}

/// Largest acceptor identity representable in the Phase 2B vote bitmask.
pub const MAX_ACCEPTORS: usize = 128;

#[derive(Clone, Debug)]
struct InstanceState<V> {
    /// Value proposed in the current round (c-val).
    c_val: V,
    /// Acceptors that sent Phase 2B for the current round (bit per id).
    votes: u128,
    decided: bool,
}

/// A Paxos coordinator driving an unbounded sequence of instances.
#[derive(Clone, Debug)]
pub struct Coordinator<V> {
    id: u32,
    n_acceptors: usize,
    c_rnd: Round,
    phase1: Phase1State,
    promises: u128,
    /// Highest-round vote reported in Phase 1B per instance: the value
    /// pick rule of Task 3 must propose these. Cold (Phase-1 only), so a
    /// tree map is fine.
    forced: BTreeMap<InstanceId, (Round, V)>,
    instances: Window<InstanceState<V>>,
    next_instance: InstanceId,
}

impl<V: Clone> Coordinator<V> {
    /// Creates a coordinator with identity `id` over `n_acceptors`
    /// (at most [`MAX_ACCEPTORS`]).
    pub fn new(id: u32, n_acceptors: usize) -> Coordinator<V> {
        assert!(n_acceptors <= MAX_ACCEPTORS, "vote bitmask holds {MAX_ACCEPTORS} acceptors");
        Coordinator {
            id,
            n_acceptors,
            c_rnd: Round::ZERO,
            phase1: Phase1State::Idle,
            promises: 0,
            forced: BTreeMap::new(),
            instances: Window::new(),
            next_instance: InstanceId(0),
        }
    }

    /// The coordinator's current round.
    pub fn round(&self) -> Round {
        self.c_rnd
    }

    /// Phase-1 progress of the current round.
    pub fn phase1_state(&self) -> Phase1State {
        self.phase1
    }

    /// The next unused instance.
    pub fn next_instance(&self) -> InstanceId {
        self.next_instance
    }

    #[inline]
    fn acceptor_bit(&self, acceptor: u32) -> Option<u128> {
        ((acceptor as usize) < MAX_ACCEPTORS).then(|| 1u128 << acceptor)
    }

    /// Starts Phase 1 for a fresh round strictly greater than `above`
    /// (usually the coordinator's own round, or a round observed from a
    /// competing coordinator). Returns the Phase 1A message to send to
    /// all acceptors.
    pub fn start_phase1(&mut self, above: Round) -> PaxosMsg<V> {
        self.c_rnd = self.c_rnd.max(above).next_for(self.id);
        self.phase1 = Phase1State::AwaitingPromises;
        self.promises = 0;
        self.forced.clear();
        // Abandon un-decided Phase 2 vote counts from the previous round.
        self.instances.retain(|_, s| s.decided);
        PaxosMsg::Phase1a { round: self.c_rnd }
    }

    /// Handles a Phase 1B from `acceptor`. Once a quorum has promised,
    /// returns `true` and Phase 2 may start ([`Phase1State::Ready`]).
    pub fn receive_1b(
        &mut self,
        acceptor: u32,
        round: Round,
        votes: &[(InstanceId, Round, V)],
    ) -> bool {
        if round != self.c_rnd || self.phase1 != Phase1State::AwaitingPromises {
            return false;
        }
        let Some(bit) = self.acceptor_bit(acceptor) else { return false };
        if self.promises & bit != 0 {
            return self.phase1 == Phase1State::Ready;
        }
        self.promises |= bit;
        for (instance, v_rnd, v_val) in votes {
            let e = self.forced.entry(*instance);
            match e {
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    if *v_rnd > o.get().0 {
                        o.insert((*v_rnd, v_val.clone()));
                    }
                }
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert((*v_rnd, v_val.clone()));
                }
            }
        }
        if self.promises.count_ones() as usize >= quorum(self.n_acceptors) {
            self.phase1 = Phase1State::Ready;
        }
        self.phase1 == Phase1State::Ready
    }

    /// Instances that Phase 1B reports revealed prior votes for. The
    /// coordinator must re-propose those values before any new ones
    /// (the value pick rule of Task 3).
    pub fn forced_instances(&self) -> impl Iterator<Item = (InstanceId, &V)> {
        self.forced.iter().map(|(&i, (_, v))| (i, v))
    }

    /// Proposes `value` in the next free instance, honouring the value
    /// pick rule if Phase 1 revealed a prior vote there. Returns the
    /// Phase 2A to send plus the instance used.
    ///
    /// Returns `None` when Phase 1 has not completed.
    pub fn propose(&mut self, value: V) -> Option<(InstanceId, PaxosMsg<V>)> {
        if self.phase1 != Phase1State::Ready {
            return None;
        }
        let instance = self.next_instance;
        self.next_instance = self.next_instance.next();
        let chosen = match self.forced.get(&instance) {
            Some((_, forced)) => forced.clone(),
            None => value,
        };
        self.instances
            .insert(instance, InstanceState { c_val: chosen.clone(), votes: 0, decided: false });
        Some((instance, PaxosMsg::Phase2a { instance, round: self.c_rnd, value: chosen }))
    }

    /// Re-emits the Phase 2A for `instance` (retransmission after loss).
    pub fn phase2a_for(&self, instance: InstanceId) -> Option<PaxosMsg<V>> {
        self.instances.get(instance).map(|s| PaxosMsg::Phase2a {
            instance,
            round: self.c_rnd,
            value: s.c_val.clone(),
        })
    }

    /// Handles a Phase 2B vote from `acceptor`. Returns the decision
    /// message exactly once, when the quorum completes.
    pub fn receive_2b(
        &mut self,
        acceptor: u32,
        instance: InstanceId,
        round: Round,
    ) -> Option<PaxosMsg<V>> {
        if round != self.c_rnd {
            return None;
        }
        let bit = self.acceptor_bit(acceptor)?;
        let q = quorum(self.n_acceptors);
        let s = self.instances.get_mut(instance)?;
        s.votes |= bit;
        if !s.decided && s.votes.count_ones() as usize >= q {
            s.decided = true;
            Some(PaxosMsg::Decision { instance, value: s.c_val.clone() })
        } else {
            None
        }
    }

    /// Whether `instance` has reached a decision in the current round.
    pub fn is_decided(&self, instance: InstanceId) -> bool {
        self.instances.get(instance).is_some_and(|s| s.decided)
    }

    /// Discards bookkeeping for every instance below `instance` (garbage
    /// collection, §3.3.7) and returns the *undecided* values that were
    /// dropped, oldest first.
    ///
    /// Undecided instances below the watermark can only exist after
    /// sustained message loss (their Phase 2B quorum never completed
    /// here, even though the watermark proves a quorum formed system
    /// wide or the instance was abandoned). Retaining them forever — the
    /// previous behaviour — grew `instances` without bound under loss; a
    /// value the caller still cares about must instead be re-proposed in
    /// a fresh instance through the existing [`Coordinator::propose`]
    /// recovery path.
    ///
    /// Caveat: "undecided *here*" does not mean "not chosen". The lost
    /// messages may have been the Phase 2B replies — acceptors may hold a
    /// chosen vote for the value in its original instance, and a failover
    /// coordinator's Phase 1 can still decide it there. Re-proposing the
    /// returned value in a fresh instance can therefore deliver it twice;
    /// callers must deduplicate at delivery (the ring learners do this
    /// with `ringpaxos::dedup::DeliveredTracker`), exactly as for
    /// failover resubmission (§3.3.5).
    #[must_use = "undecided values below the watermark are dropped and must be re-proposed"]
    pub fn gc_below(&mut self, instance: InstanceId) -> Vec<V> {
        self.instances
            .drain_below(instance)
            .into_iter()
            .filter(|(_, s)| !s.decided)
            .map(|(_, s)| s.c_val)
            .collect()
    }

    /// Number of tracked instances (memory accounting).
    pub fn tracked_instances(&self) -> usize {
        self.instances.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ready_coordinator(n: usize) -> Coordinator<u32> {
        let mut c = Coordinator::new(0, n);
        c.start_phase1(Round::ZERO);
        for a in 0..n as u32 {
            c.receive_1b(a, c.round(), &[]);
        }
        assert_eq!(c.phase1_state(), Phase1State::Ready);
        c
    }

    #[test]
    fn phase1_needs_majority() {
        let mut c: Coordinator<u32> = Coordinator::new(0, 5);
        let PaxosMsg::Phase1a { round } = c.start_phase1(Round::ZERO) else { panic!() };
        assert!(!c.receive_1b(0, round, &[]));
        assert!(!c.receive_1b(1, round, &[]));
        assert!(!c.receive_1b(1, round, &[]), "duplicate does not count");
        assert!(c.receive_1b(2, round, &[]));
        assert_eq!(c.phase1_state(), Phase1State::Ready);
    }

    #[test]
    fn propose_blocked_before_phase1() {
        let mut c: Coordinator<u32> = Coordinator::new(0, 3);
        assert!(c.propose(1).is_none());
    }

    #[test]
    fn decision_fires_once_at_quorum() {
        let mut c = ready_coordinator(3);
        let (i, _m) = c.propose(9).unwrap();
        assert!(c.receive_2b(0, i, c.round()).is_none());
        let d = c.receive_2b(1, i, c.round());
        assert!(matches!(d, Some(PaxosMsg::Decision { value: 9, .. })));
        assert!(c.receive_2b(2, i, c.round()).is_none(), "no duplicate decision");
        assert!(c.is_decided(i));
    }

    #[test]
    fn value_pick_rule_forces_highest_vote() {
        let mut c: Coordinator<u32> = Coordinator::new(1, 3);
        let PaxosMsg::Phase1a { round } = c.start_phase1(Round::new(4, 0)) else { panic!() };
        assert!(round > Round::new(4, 0));
        // Acceptor 0 voted 7 in round (1,0); acceptor 1 voted 8 in (3,0).
        c.receive_1b(0, round, &[(InstanceId(0), Round::new(1, 0), 7)]);
        c.receive_1b(1, round, &[(InstanceId(0), Round::new(3, 0), 8)]);
        let (i, m) = c.propose(99).unwrap();
        assert_eq!(i, InstanceId(0));
        // Must re-propose 8 (highest v-rnd), not its own 99.
        assert!(matches!(m, PaxosMsg::Phase2a { value: 8, .. }));
        // The next instance is free: own value goes through.
        let (_, m2) = c.propose(99).unwrap();
        assert!(matches!(m2, PaxosMsg::Phase2a { value: 99, .. }));
    }

    #[test]
    fn stale_2b_rounds_ignored() {
        let mut c = ready_coordinator(3);
        let (i, _) = c.propose(5).unwrap();
        let old = Round::new(0, 0);
        assert!(c.receive_2b(0, i, old).is_none());
        assert!(c.receive_2b(1, i, old).is_none());
        assert!(!c.is_decided(i));
    }

    #[test]
    fn new_round_supersedes_unfinished_instances() {
        let mut c = ready_coordinator(3);
        let (i, _) = c.propose(5).unwrap();
        c.receive_2b(0, i, c.round());
        let r1 = c.round();
        c.start_phase1(r1);
        assert!(c.round() > r1);
        assert_eq!(c.phase1_state(), Phase1State::AwaitingPromises);
        // Old-round 2B no longer counts.
        assert!(c.receive_2b(1, i, r1).is_none());
    }

    #[test]
    fn gc_reclaims_undecided_below_watermark() {
        // Regression test for the GC leak: `gc_below` used to retain
        // undecided instances below the watermark forever, so sustained
        // message loss grew `instances` without bound.
        let mut c = ready_coordinator(3);
        for v in 0..5 {
            let (i, _) = c.propose(v).unwrap();
            c.receive_2b(0, i, c.round());
            if v != 3 {
                c.receive_2b(1, i, c.round());
            }
        }
        assert!(!c.is_decided(InstanceId(3)));
        let orphans = c.gc_below(InstanceId(5));
        // Nothing below the watermark survives — decided or not.
        assert_eq!(c.tracked_instances(), 0, "undecided instance leaked past GC");
        // The undecided value is handed back for re-proposal.
        assert_eq!(orphans, vec![3]);
        // The existing recovery path decides it in a fresh instance.
        let (i2, _) = c.propose(orphans[0]).unwrap();
        assert_eq!(i2, InstanceId(5));
        c.receive_2b(0, i2, c.round());
        assert!(c.receive_2b(1, i2, c.round()).is_some());
        assert!(c.is_decided(i2));
    }

    #[test]
    fn gc_returns_no_orphans_when_all_decided() {
        let mut c = ready_coordinator(3);
        for v in 0..4 {
            let (i, _) = c.propose(v).unwrap();
            c.receive_2b(0, i, c.round());
            c.receive_2b(1, i, c.round());
        }
        let orphans = c.gc_below(InstanceId(4));
        assert!(orphans.is_empty());
        assert_eq!(c.tracked_instances(), 0);
    }

    #[test]
    fn gc_keeps_instances_at_or_above_watermark() {
        let mut c = ready_coordinator(3);
        for v in 0..6 {
            let (i, _) = c.propose(v).unwrap();
            c.receive_2b(0, i, c.round());
            c.receive_2b(1, i, c.round());
        }
        assert!(c.gc_below(InstanceId(4)).is_empty());
        assert_eq!(c.tracked_instances(), 2);
        assert!(c.is_decided(InstanceId(4)));
        assert!(c.is_decided(InstanceId(5)));
    }

    #[test]
    fn retransmission_replays_same_value() {
        let mut c = ready_coordinator(3);
        let (i, first) = c.propose(41).unwrap();
        let again = c.phase2a_for(i).unwrap();
        assert_eq!(first, again);
    }
}
