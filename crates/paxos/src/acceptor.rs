//! The acceptor role (Tasks 2 and 4 of Algorithm 1).
//!
//! An acceptor maintains `rnd` — the highest round it has *heard of*,
//! shared across instances (§3.3.7) — and, per instance, `v-rnd`/`v-val`,
//! the round and value of its latest vote.

use crate::msg::{InstanceId, PaxosMsg, Round};
use crate::window::Window;

/// Vote state an acceptor stores for one instance.
#[derive(Clone, Debug, PartialEq)]
pub struct Vote<V> {
    /// Round in which the vote was cast.
    pub v_rnd: Round,
    /// Voted value.
    pub v_val: V,
}

/// A Paxos acceptor.
///
/// Vote storage is a dense sliding [`Window`]: instances are proposed
/// contiguously and garbage-collected from below (§3.3.7), so
/// `window[instance - base]` makes the per-packet operations
/// ([`Acceptor::vote`], [`Acceptor::receive_2a`]) plain array indexing
/// instead of tree searches. The rare vote below the window (a
/// retransmission older than the GC watermark) falls back to the
/// window's side map, preserving the exact semantics of the previous
/// `BTreeMap` storage.
#[derive(Clone, Debug, Default)]
pub struct Acceptor<V> {
    rnd: Round,
    votes: Window<Vote<V>>,
}

impl<V: Clone> Acceptor<V> {
    /// Creates a fresh acceptor.
    pub fn new() -> Acceptor<V> {
        Acceptor { rnd: Round::ZERO, votes: Window::new() }
    }

    /// The highest round this acceptor has promised.
    pub fn rnd(&self) -> Round {
        self.rnd
    }

    /// The acceptor's vote in `instance`, if it has cast one.
    #[inline]
    pub fn vote(&self, instance: InstanceId) -> Option<&Vote<V>> {
        self.votes.get(instance)
    }

    /// Handles a Phase 1A message. Returns the Phase 1B reply if the round
    /// is higher than anything promised so far, `None` otherwise (stale).
    pub fn receive_1a(&mut self, round: Round) -> Option<PaxosMsg<V>> {
        if round > self.rnd {
            self.rnd = round;
            let votes: Vec<(InstanceId, Round, V)> =
                self.votes.iter().map(|(i, v)| (i, v.v_rnd, v.v_val.clone())).collect();
            Some(PaxosMsg::Phase1b { round: self.rnd, votes })
        } else {
            None
        }
    }

    /// Handles a Phase 2A message: votes for `value` unless a higher round
    /// has been promised. Returns the Phase 2B reply on success.
    pub fn receive_2a(
        &mut self,
        instance: InstanceId,
        round: Round,
        value: V,
    ) -> Option<PaxosMsg<V>> {
        if round >= self.rnd {
            self.rnd = round;
            self.votes.insert(instance, Vote { v_rnd: round, v_val: value });
            Some(PaxosMsg::Phase2b { instance, round })
        } else {
            None
        }
    }

    /// Rebuilds an acceptor from durable state (the recovery subsystem's
    /// write-ahead log): the promised round and stored votes are
    /// installed verbatim. Replaying through [`Acceptor::receive_2a`]
    /// would be wrong — recovered state legitimately holds votes whose
    /// `v-rnd` is below the shared promised round.
    pub fn restore(
        promised: Round,
        votes: impl IntoIterator<Item = (InstanceId, Round, V)>,
    ) -> Acceptor<V> {
        let mut a = Acceptor::new();
        let votes: Vec<(InstanceId, Round, V)> = votes.into_iter().collect();
        // A trimmed log starts at the checkpoint watermark, which in a
        // long run is far above zero: base the dense window there
        // instead of allocating (and asserting about) every slot since
        // instance 0.
        if let Some(first) = votes.iter().map(|&(i, _, _)| i).min() {
            a.votes.advance_base(first);
        }
        let mut max_rnd = promised;
        for (instance, v_rnd, v_val) in votes {
            max_rnd = max_rnd.max(v_rnd);
            a.votes.insert(instance, Vote { v_rnd, v_val });
        }
        a.rnd = max_rnd;
        a
    }

    /// Discards vote state for all instances strictly below `instance`
    /// (garbage collection, §3.3.7). The shared `rnd` is retained.
    pub fn gc_below(&mut self, instance: InstanceId) {
        self.votes.advance_base(instance);
    }

    /// Number of instances with stored votes (for memory accounting).
    pub fn stored_votes(&self) -> usize {
        self.votes.len()
    }

    /// The garbage-collection watermark: the lowest instance whose vote
    /// state is still retained in the dense window ([`Acceptor::gc_below`]).
    pub fn gc_base(&self) -> InstanceId {
        self.votes.base()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(c: u64) -> Round {
        Round::new(c, 0)
    }

    #[test]
    fn promises_only_higher_rounds() {
        let mut a: Acceptor<u32> = Acceptor::new();
        assert!(a.receive_1a(r(2)).is_some());
        assert!(a.receive_1a(r(2)).is_none(), "same round refused");
        assert!(a.receive_1a(r(1)).is_none(), "lower round refused");
        assert!(a.receive_1a(r(3)).is_some());
        assert_eq!(a.rnd(), r(3));
    }

    #[test]
    fn votes_at_or_above_promise() {
        let mut a: Acceptor<u32> = Acceptor::new();
        a.receive_1a(r(5));
        // Vote in the promised round succeeds.
        assert!(a.receive_2a(InstanceId(0), r(5), 42).is_some());
        // A lower round is rejected.
        assert!(a.receive_2a(InstanceId(0), r(4), 43).is_none());
        // A higher round succeeds and bumps rnd.
        assert!(a.receive_2a(InstanceId(0), r(6), 44).is_some());
        assert_eq!(a.rnd(), r(6));
        assert_eq!(a.vote(InstanceId(0)).unwrap().v_val, 44);
    }

    #[test]
    fn phase1b_reports_prior_votes() {
        let mut a: Acceptor<u32> = Acceptor::new();
        a.receive_2a(InstanceId(3), r(1), 7);
        a.receive_2a(InstanceId(5), r(1), 9);
        match a.receive_1a(r(2)).unwrap() {
            PaxosMsg::Phase1b { round, votes } => {
                assert_eq!(round, r(2));
                assert_eq!(votes, vec![(InstanceId(3), r(1), 7), (InstanceId(5), r(1), 9)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn vote_does_not_regress_after_new_promise() {
        let mut a: Acceptor<u32> = Acceptor::new();
        a.receive_2a(InstanceId(0), r(1), 7);
        a.receive_1a(r(3));
        // The old vote survives the new promise.
        assert_eq!(a.vote(InstanceId(0)).unwrap().v_val, 7);
        assert_eq!(a.vote(InstanceId(0)).unwrap().v_rnd, r(1));
        // Voting in round 2 is now refused (promised 3).
        assert!(a.receive_2a(InstanceId(0), r(2), 8).is_none());
    }

    #[test]
    fn restore_installs_state_verbatim_and_bases_the_window_high() {
        // A trimmed log starting far above instance 0 (e.g. 2^25, past
        // the window's jump guard) must not allocate slots from zero.
        let base = 1u64 << 25;
        let votes = vec![(InstanceId(base), r(1), 7u32), (InstanceId(base + 3), r(2), 8)];
        let a = Acceptor::restore(r(2), votes);
        assert_eq!(a.rnd(), r(2));
        assert_eq!(a.stored_votes(), 2);
        assert_eq!(a.vote(InstanceId(base)).unwrap().v_val, 7);
        assert_eq!(a.vote(InstanceId(base)).unwrap().v_rnd, r(1), "old v-rnd kept");
        // A higher durable vote round wins over the logged promise.
        let b = Acceptor::restore(r(1), vec![(InstanceId(0), r(4), 9u32)]);
        assert_eq!(b.rnd(), r(4));
    }

    #[test]
    fn gc_discards_old_instances_only() {
        let mut a: Acceptor<u32> = Acceptor::new();
        for i in 0..10 {
            a.receive_2a(InstanceId(i), r(1), i as u32);
        }
        a.gc_below(InstanceId(7));
        assert_eq!(a.stored_votes(), 3);
        assert!(a.vote(InstanceId(6)).is_none());
        assert!(a.vote(InstanceId(7)).is_some());
        assert_eq!(a.rnd(), r(1), "shared rnd survives gc");
    }

    #[test]
    fn late_vote_below_gc_watermark_is_stored() {
        // A retransmitted 2A older than the GC watermark must still be
        // voteable, exactly as with the previous map storage.
        let mut a: Acceptor<u32> = Acceptor::new();
        a.receive_2a(InstanceId(8), r(1), 1);
        a.gc_below(InstanceId(5));
        assert!(a.receive_2a(InstanceId(2), r(1), 9).is_some());
        assert_eq!(a.vote(InstanceId(2)).unwrap().v_val, 9);
        // Phase 1B reports it, in ascending instance order.
        match a.receive_1a(r(2)).unwrap() {
            PaxosMsg::Phase1b { votes, .. } => {
                let keys: Vec<u64> = votes.iter().map(|(i, _, _)| i.0).collect();
                assert_eq!(keys, vec![2, 8]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
