//! The learner role: collects decisions and releases them in instance
//! order, tracking gaps left by message loss.

use std::collections::BTreeMap;

use crate::msg::InstanceId;

/// A Paxos learner. Decisions may arrive out of order (UDP loss and
/// retransmission); `Learner` buffers them and hands the application a
/// strictly in-order stream.
#[derive(Clone, Debug, Default)]
pub struct Learner<V> {
    pending: BTreeMap<InstanceId, V>,
    next: InstanceId,
}

impl<V> Learner<V> {
    /// Creates a learner expecting instance 0 first.
    pub fn new() -> Learner<V> {
        Learner { pending: BTreeMap::new(), next: InstanceId(0) }
    }

    /// Records the decision of `instance`. Duplicates are ignored.
    pub fn on_decision(&mut self, instance: InstanceId, value: V) {
        if instance >= self.next {
            self.pending.entry(instance).or_insert(value);
        }
    }

    /// Whether the decision for `instance` is known (delivered or buffered).
    pub fn knows(&self, instance: InstanceId) -> bool {
        instance < self.next || self.pending.contains_key(&instance)
    }

    /// Pops the next in-order decision, if its instance has been decided.
    pub fn deliver_next(&mut self) -> Option<(InstanceId, V)> {
        let v = self.pending.remove(&self.next)?;
        let i = self.next;
        self.next = self.next.next();
        Some((i, v))
    }

    /// Drains every consecutively-available decision.
    pub fn deliver_all(&mut self) -> Vec<(InstanceId, V)> {
        let mut out = Vec::new();
        while let Some(d) = self.deliver_next() {
            out.push(d);
        }
        out
    }

    /// The instance the learner is waiting for next.
    pub fn next_instance(&self) -> InstanceId {
        self.next
    }

    /// Instances above `next` that are known — i.e., the gaps before them
    /// block delivery. Used to trigger retransmission requests.
    pub fn missing_before(&self) -> Vec<InstanceId> {
        let Some((&max, _)) = self.pending.iter().next_back() else {
            return Vec::new();
        };
        (self.next.0..max.0).map(InstanceId).filter(|i| !self.pending.contains_key(i)).collect()
    }

    /// Number of buffered (undeliverable) decisions.
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_instance_order() {
        let mut l = Learner::new();
        l.on_decision(InstanceId(1), "b");
        assert!(l.deliver_next().is_none(), "gap at 0 blocks");
        l.on_decision(InstanceId(0), "a");
        assert_eq!(l.deliver_all(), vec![(InstanceId(0), "a"), (InstanceId(1), "b")]);
    }

    #[test]
    fn duplicates_and_stale_ignored() {
        let mut l = Learner::new();
        l.on_decision(InstanceId(0), 1);
        l.on_decision(InstanceId(0), 2);
        assert_eq!(l.deliver_next(), Some((InstanceId(0), 1)));
        // Stale re-delivery after consumption is dropped.
        l.on_decision(InstanceId(0), 3);
        assert_eq!(l.deliver_next(), None);
        assert_eq!(l.next_instance(), InstanceId(1));
    }

    #[test]
    fn reports_missing_gaps() {
        let mut l: Learner<u8> = Learner::new();
        l.on_decision(InstanceId(2), 2);
        l.on_decision(InstanceId(5), 5);
        assert_eq!(
            l.missing_before(),
            vec![InstanceId(0), InstanceId(1), InstanceId(3), InstanceId(4)]
        );
        l.on_decision(InstanceId(0), 0);
        l.on_decision(InstanceId(1), 1);
        l.deliver_all();
        assert_eq!(l.missing_before(), vec![InstanceId(3), InstanceId(4)]);
    }

    #[test]
    fn knows_tracks_delivered_and_buffered() {
        let mut l: Learner<u8> = Learner::new();
        l.on_decision(InstanceId(0), 0);
        l.on_decision(InstanceId(2), 2);
        assert!(l.knows(InstanceId(0)));
        assert!(!l.knows(InstanceId(1)));
        assert!(l.knows(InstanceId(2)));
        l.deliver_all();
        assert!(l.knows(InstanceId(0)), "delivered instances stay known");
    }

    #[test]
    fn buffered_counts_pending() {
        let mut l: Learner<u8> = Learner::new();
        l.on_decision(InstanceId(3), 3);
        l.on_decision(InstanceId(4), 4);
        assert_eq!(l.buffered(), 2);
    }
}
