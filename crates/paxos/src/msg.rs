//! Message and identifier types for Basic Paxos (thesis Algorithm 1).

use std::fmt;

/// A round (ballot) number. Rounds are totally ordered and unique per
/// coordinator: the pair `(counter, proposer)` compares lexicographically,
/// so two coordinators can never produce the same round.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Round {
    /// Monotone counter chosen by the coordinator.
    pub counter: u64,
    /// Index of the coordinator that owns this round.
    pub owner: u32,
}

impl Round {
    /// The zero round: no coordinator has started anything yet.
    pub const ZERO: Round = Round { counter: 0, owner: 0 };

    /// Creates a round owned by `owner`.
    pub fn new(counter: u64, owner: u32) -> Round {
        Round { counter, owner }
    }

    /// The smallest round owned by `owner` that is greater than `self`.
    pub fn next_for(self, owner: u32) -> Round {
        Round { counter: self.counter + 1, owner }
    }

    /// Whether this is the initial (never used) round.
    pub fn is_zero(self) -> bool {
        self == Round::ZERO
    }
}

impl fmt::Debug for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}.{}", self.counter, self.owner)
    }
}

/// Index of a consensus instance in the replicated log.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct InstanceId(pub u64);

impl InstanceId {
    /// The next instance in the log.
    pub fn next(self) -> InstanceId {
        InstanceId(self.0 + 1)
    }
}

impl fmt::Debug for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Majority quorum size for `n` acceptors: `ceil((n + 1) / 2)`.
pub fn quorum(n_acceptors: usize) -> usize {
    n_acceptors / 2 + 1
}

/// The Paxos messages of Algorithm 1, generic over the proposed value type.
#[derive(Clone, Debug, PartialEq)]
pub enum PaxosMsg<V> {
    /// Phase 1A: the coordinator asks acceptors to join `round`.
    Phase1a {
        /// Round being started.
        round: Round,
    },
    /// Phase 1B: an acceptor promises `round` and reports its vote state
    /// for every instance it has voted in.
    Phase1b {
        /// Round the acceptor is promising.
        round: Round,
        /// `(instance, v-rnd, v-val)` for instances with a cast vote.
        votes: Vec<(InstanceId, Round, V)>,
    },
    /// Phase 2A: the coordinator proposes `value` in `instance` at `round`.
    Phase2a {
        /// Target instance.
        instance: InstanceId,
        /// Proposing round.
        round: Round,
        /// Proposed value.
        value: V,
    },
    /// Phase 2B: an acceptor's vote for `instance` at `round`.
    Phase2b {
        /// Voted instance.
        instance: InstanceId,
        /// Voted round.
        round: Round,
    },
    /// The decision notification for learners.
    Decision {
        /// Decided instance.
        instance: InstanceId,
        /// Decided value.
        value: V,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_order_lexicographically() {
        assert!(Round::new(1, 0) < Round::new(1, 1));
        assert!(Round::new(1, 9) < Round::new(2, 0));
        assert!(Round::ZERO.is_zero());
        assert!(!Round::new(0, 1).is_zero());
    }

    #[test]
    fn next_for_is_strictly_greater() {
        let r = Round::new(3, 2);
        assert!(r.next_for(0) > r);
        assert!(r.next_for(7) > r);
    }

    #[test]
    fn quorum_sizes() {
        assert_eq!(quorum(1), 1);
        assert_eq!(quorum(2), 2);
        assert_eq!(quorum(3), 2);
        assert_eq!(quorum(4), 3);
        assert_eq!(quorum(5), 3);
    }

    #[test]
    fn instance_next() {
        assert_eq!(InstanceId(4).next(), InstanceId(5));
    }
}
