//! Dense sliding-window storage for per-instance protocol state.
//!
//! Every per-instance map in the Paxos roles shares the same access
//! pattern: instances are allocated contiguously from below, read and
//! written while in flight, and garbage-collected from below once a
//! watermark of decided/applied instances advances (§3.3.7). A search
//! tree pays a pointer chase and allocation per touched instance for a
//! keyspace that is, in practice, a short dense interval.
//!
//! [`Window`] exploits that: state for instances at or above `base` lives
//! in a `VecDeque` indexed by `instance - base` (one bounds check and an
//! array index per packet), and the rare write *below* the GC watermark —
//! a retransmission older than the last collection — falls back to a side
//! map, so the semantics of the `BTreeMap`s this replaces are preserved
//! exactly: nothing is ever refused, iteration stays in ascending
//! instance order, and [`Window::advance_base`] behaves like
//! `BTreeMap::split_off`.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::msg::InstanceId;

/// A map from [`InstanceId`] to `T`, dense above a sliding base.
#[derive(Clone, Debug)]
pub struct Window<T> {
    /// First instance covered by `slots`.
    base: InstanceId,
    /// State for `base..`, indexed by offset (`None` = absent).
    slots: VecDeque<Option<T>>,
    /// Occupied entries in `slots`.
    stored: usize,
    /// Entries below `base` (rare; written only by retransmissions older
    /// than the GC watermark).
    below: BTreeMap<InstanceId, T>,
}

impl<T> Default for Window<T> {
    fn default() -> Window<T> {
        Window::new()
    }
}

impl<T> Window<T> {
    /// Creates an empty window based at instance 0.
    pub fn new() -> Window<T> {
        Window { base: InstanceId(0), slots: VecDeque::new(), stored: 0, below: BTreeMap::new() }
    }

    /// First instance covered by the dense slots (the GC watermark).
    pub fn base(&self) -> InstanceId {
        self.base
    }

    /// Number of stored entries (memory accounting).
    pub fn len(&self) -> usize {
        self.stored + self.below.len()
    }

    /// Whether no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn offset(&self, instance: InstanceId) -> Option<usize> {
        if instance >= self.base {
            Some((instance.0 - self.base.0) as usize)
        } else {
            None
        }
    }

    /// The entry for `instance`, if stored.
    #[inline]
    pub fn get(&self, instance: InstanceId) -> Option<&T> {
        match self.offset(instance) {
            Some(idx) => self.slots.get(idx).and_then(|s| s.as_ref()),
            None => self.below.get(&instance),
        }
    }

    /// Mutable access to the entry for `instance`, if stored.
    #[inline]
    pub fn get_mut(&mut self, instance: InstanceId) -> Option<&mut T> {
        match self.offset(instance) {
            Some(idx) => self.slots.get_mut(idx).and_then(|s| s.as_mut()),
            None => self.below.get_mut(&instance),
        }
    }

    /// Whether an entry for `instance` is stored.
    #[inline]
    pub fn contains(&self, instance: InstanceId) -> bool {
        self.get(instance).is_some()
    }

    /// Grows `slots` so that `idx` is addressable.
    #[inline]
    fn grow_to(&mut self, idx: usize) {
        // Instances are proposed contiguously and GC'd from below; a
        // far-ahead id would turn one packet into a huge resize.
        debug_assert!(
            idx < self.slots.len() + (1 << 24),
            "window jump: offset {idx} vs base {:?}",
            self.base
        );
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
    }

    /// Inserts an entry, returning the previous one (map semantics).
    pub fn insert(&mut self, instance: InstanceId, value: T) -> Option<T> {
        match self.offset(instance) {
            Some(idx) => {
                self.grow_to(idx);
                let old = self.slots[idx].replace(value);
                if old.is_none() {
                    self.stored += 1;
                }
                old
            }
            None => self.below.insert(instance, value),
        }
    }

    /// Removes and returns the entry for `instance`.
    pub fn remove(&mut self, instance: InstanceId) -> Option<T> {
        match self.offset(instance) {
            Some(idx) => {
                let old = self.slots.get_mut(idx).and_then(|s| s.take());
                if old.is_some() {
                    self.stored -= 1;
                }
                old
            }
            None => self.below.remove(&instance),
        }
    }

    /// Entries in ascending instance order (side map, then slots).
    pub fn iter(&self) -> impl Iterator<Item = (InstanceId, &T)> {
        let base = self.base;
        self.below.iter().map(|(&i, v)| (i, v)).chain(
            self.slots.iter().enumerate().filter_map(move |(off, s)| {
                s.as_ref().map(|v| (InstanceId(base.0 + off as u64), v))
            }),
        )
    }

    /// Drops entries whose closure returns `false` (map `retain`).
    pub fn retain(&mut self, mut keep: impl FnMut(InstanceId, &T) -> bool) {
        self.below.retain(|&i, v| keep(i, v));
        for (off, slot) in self.slots.iter_mut().enumerate() {
            let i = InstanceId(self.base.0 + off as u64);
            if slot.as_ref().is_some_and(|v| !keep(i, v)) {
                *slot = None;
                self.stored -= 1;
            }
        }
    }

    /// Advances the base to `instance`, dropping every entry strictly
    /// below it in place — the garbage-collection step (§3.3.7).
    /// Equivalent to `BTreeMap::split_off(&instance)` keeping the upper
    /// half. Use [`Window::drain_below`] when the dropped entries are
    /// needed.
    pub fn advance_base(&mut self, instance: InstanceId) {
        let mut low = std::mem::take(&mut self.below);
        self.below = low.split_off(&instance);
        drop(low);
        while self.base < instance {
            match self.slots.pop_front() {
                Some(slot) => {
                    if slot.is_some() {
                        self.stored -= 1;
                    }
                    self.base = self.base.next();
                }
                None => {
                    // Window exhausted: jump the base the rest of the way.
                    self.base = instance;
                    break;
                }
            }
        }
    }

    /// Like [`Window::advance_base`], but returns the discarded entries
    /// in ascending instance order — for callers that must not lose them
    /// (e.g. undecided proposals, see
    /// [`crate::coordinator::Coordinator::gc_below`]).
    pub fn drain_below(&mut self, instance: InstanceId) -> Vec<(InstanceId, T)> {
        let mut dropped: Vec<(InstanceId, T)> = Vec::new();
        let mut low = std::mem::take(&mut self.below);
        self.below = low.split_off(&instance);
        dropped.extend(low);
        while self.base < instance {
            match self.slots.pop_front() {
                Some(slot) => {
                    if let Some(v) = slot {
                        self.stored -= 1;
                        dropped.push((self.base, v));
                    }
                    self.base = self.base.next();
                }
                None => {
                    self.base = instance;
                    break;
                }
            }
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut w: Window<u32> = Window::new();
        assert!(w.is_empty());
        assert_eq!(w.insert(InstanceId(3), 30), None);
        assert_eq!(w.insert(InstanceId(3), 31), Some(30));
        assert_eq!(w.get(InstanceId(3)), Some(&31));
        assert_eq!(w.len(), 1);
        assert_eq!(w.remove(InstanceId(3)), Some(31));
        assert_eq!(w.remove(InstanceId(3)), None);
        assert!(w.is_empty());
    }

    #[test]
    fn advance_base_splits_like_btreemap() {
        let mut w: Window<u64> = Window::new();
        for i in 0..10 {
            w.insert(InstanceId(i), i * 10);
        }
        w.advance_base(InstanceId(4));
        assert_eq!(w.len(), 6);
        assert_eq!(w.base(), InstanceId(4));
        assert!(w.get(InstanceId(3)).is_none());
        assert_eq!(w.get(InstanceId(4)), Some(&40));
    }

    #[test]
    fn drain_below_returns_dropped_entries_in_order() {
        let mut w: Window<u64> = Window::new();
        for i in 0..10 {
            w.insert(InstanceId(i), i * 10);
        }
        w.remove(InstanceId(2));
        let dropped = w.drain_below(InstanceId(4));
        assert_eq!(dropped, vec![(InstanceId(0), 0), (InstanceId(1), 10), (InstanceId(3), 30)]);
        assert_eq!(w.len(), 6);
        assert_eq!(w.base(), InstanceId(4));
    }

    #[test]
    fn writes_below_base_fall_back_to_side_map() {
        let mut w: Window<u32> = Window::new();
        w.insert(InstanceId(10), 1);
        w.advance_base(InstanceId(8));
        // A stale retransmission below the watermark is still stored.
        w.insert(InstanceId(2), 7);
        assert_eq!(w.get(InstanceId(2)), Some(&7));
        assert_eq!(w.len(), 2);
        // Iteration stays in ascending instance order.
        let keys: Vec<u64> = w.iter().map(|(i, _)| i.0).collect();
        assert_eq!(keys, vec![2, 10]);
        // The next GC sweeps the side map too.
        let dropped = w.drain_below(InstanceId(10));
        assert_eq!(dropped.iter().map(|(i, _)| i.0).collect::<Vec<_>>(), vec![2]);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn advance_base_past_window_jumps() {
        let mut w: Window<u32> = Window::new();
        w.insert(InstanceId(1), 1);
        w.advance_base(InstanceId(100));
        assert_eq!(w.base(), InstanceId(100));
        assert!(w.is_empty());
        w.insert(InstanceId(100), 5);
        assert_eq!(w.get(InstanceId(100)), Some(&5));
    }

    #[test]
    fn insert_into_existing_slot_replaces() {
        let mut w: Window<Vec<u32>> = Window::new();
        w.insert(InstanceId(5), vec![1]);
        assert_eq!(w.insert(InstanceId(5), vec![1, 2]), Some(vec![1]));
        assert_eq!(w.get(InstanceId(5)), Some(&vec![1, 2]));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn retain_drops_matching_entries() {
        let mut w: Window<u32> = Window::new();
        for i in 0..6 {
            w.insert(InstanceId(i), i as u32);
        }
        w.retain(|_, v| v % 2 == 0);
        assert_eq!(w.len(), 3);
        assert!(w.contains(InstanceId(2)));
        assert!(!w.contains(InstanceId(3)));
    }
}
