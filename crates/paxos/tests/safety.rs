//! Property tests for Paxos safety: under arbitrary message schedules —
//! interleaved coordinators, reordering, duplication, and loss — no two
//! processes ever decide different values for the same instance, and every
//! decided value was proposed (uniform integrity).

use proptest::prelude::*;

use paxos::prelude::*;
use std::collections::HashMap;

/// One simulated network message in flight.
#[derive(Clone, Debug)]
enum Net {
    ToAcceptor { acceptor: usize, msg: PaxosMsg<u32> },
    ToCoordinator { coord: usize, acceptor: usize, msg: PaxosMsg<u32> },
}

/// A scripted step of the adversarial schedule.
#[derive(Clone, Debug)]
enum Step {
    /// Coordinator `c` starts a fresh Phase 1 (e.g., after a suspicion).
    NewRound(usize),
    /// Coordinator `c` proposes its next value.
    Propose(usize),
    /// Deliver the in-flight message at index `i % len` (then remove it).
    Deliver(usize),
    /// Duplicate the in-flight message at index `i % len`.
    Duplicate(usize),
    /// Drop the in-flight message at index `i % len`.
    Drop(usize),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..2usize).prop_map(Step::NewRound),
        (0..2usize).prop_map(Step::Propose),
        (0..64usize).prop_map(Step::Deliver),
        (0..64usize).prop_map(Step::Duplicate),
        (0..64usize).prop_map(Step::Drop),
    ]
}

/// Runs a schedule against 2 coordinators / 3 acceptors and checks safety.
fn run_schedule(steps: &[Step]) {
    const N_ACCEPTORS: usize = 3;
    let mut coords: Vec<Coordinator<u32>> =
        (0..2).map(|id| Coordinator::new(id as u32, N_ACCEPTORS)).collect();
    let mut acceptors: Vec<Acceptor<u32>> = (0..N_ACCEPTORS).map(|_| Acceptor::new()).collect();
    let mut net: Vec<(usize, Net)> = Vec::new(); // (origin coord, message)
    let mut next_value = 100u32;
    let mut decided: HashMap<InstanceId, u32> = HashMap::new();
    let mut proposed: Vec<u32> = Vec::new();
    let mut highest_seen: Round = Round::ZERO;

    let record_decision =
        |decided: &mut HashMap<InstanceId, u32>, instance: InstanceId, value: u32| {
            if let Some(prev) = decided.insert(instance, value) {
                assert_eq!(prev, value, "AGREEMENT VIOLATION at {instance:?}");
            }
        };

    for step in steps {
        match step {
            Step::NewRound(c) => {
                let msg = coords[*c].start_phase1(highest_seen);
                if let PaxosMsg::Phase1a { round } = &msg {
                    highest_seen = highest_seen.max(*round);
                }
                for a in 0..N_ACCEPTORS {
                    net.push((*c, Net::ToAcceptor { acceptor: a, msg: msg.clone() }));
                }
            }
            Step::Propose(c) => {
                next_value += 1;
                if let Some((_, msg)) = coords[*c].propose(next_value) {
                    proposed.push(next_value);
                    if let PaxosMsg::Phase2a { value, .. } = &msg {
                        // The forced value may differ from next_value.
                        proposed.push(*value);
                    }
                    for a in 0..N_ACCEPTORS {
                        net.push((*c, Net::ToAcceptor { acceptor: a, msg: msg.clone() }));
                    }
                }
            }
            Step::Deliver(i) | Step::Duplicate(i) => {
                if net.is_empty() {
                    continue;
                }
                let idx = i % net.len();
                let (origin, m) = if matches!(step, Step::Duplicate(_)) {
                    net[idx].clone()
                } else {
                    net.remove(idx)
                };
                match m {
                    Net::ToAcceptor { acceptor, msg } => match msg {
                        PaxosMsg::Phase1a { round } => {
                            if let Some(reply) = acceptors[acceptor].receive_1a(round) {
                                net.push((
                                    origin,
                                    Net::ToCoordinator { coord: origin, acceptor, msg: reply },
                                ));
                            }
                        }
                        PaxosMsg::Phase2a { instance, round, value } => {
                            if let Some(reply) =
                                acceptors[acceptor].receive_2a(instance, round, value)
                            {
                                net.push((
                                    origin,
                                    Net::ToCoordinator { coord: origin, acceptor, msg: reply },
                                ));
                            }
                        }
                        _ => {}
                    },
                    Net::ToCoordinator { coord, acceptor, msg } => match msg {
                        PaxosMsg::Phase1b { round, votes } => {
                            coords[coord].receive_1b(acceptor as u32, round, &votes);
                        }
                        PaxosMsg::Phase2b { instance, round } => {
                            if let Some(PaxosMsg::Decision { instance, value }) =
                                coords[coord].receive_2b(acceptor as u32, instance, round)
                            {
                                record_decision(&mut decided, instance, value);
                            }
                        }
                        _ => {}
                    },
                }
            }
            Step::Drop(i) => {
                if !net.is_empty() {
                    let idx = i % net.len();
                    net.remove(idx);
                }
            }
        }
    }

    // Uniform integrity: every decided value was proposed by someone.
    for (&i, &v) in &decided {
        assert!(proposed.contains(&v), "instance {i:?} decided unproposed value {v}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn agreement_under_adversarial_schedules(steps in prop::collection::vec(step_strategy(), 1..200)) {
        run_schedule(&steps);
    }
}

/// Deterministic regression: two coordinators racing over the same instance
/// must converge on a single value via the value pick rule.
#[test]
fn dueling_coordinators_converge() {
    let mut c0: Coordinator<u32> = Coordinator::new(0, 3);
    let mut c1: Coordinator<u32> = Coordinator::new(1, 3);
    let mut accs: Vec<Acceptor<u32>> = (0..3).map(|_| Acceptor::new()).collect();

    // c0 completes Phase 1 and gets value 10 accepted only by acceptor 0.
    let PaxosMsg::Phase1a { round: r0 } = c0.start_phase1(Round::ZERO) else { panic!() };
    for (i, a) in accs.iter_mut().enumerate() {
        if let Some(PaxosMsg::Phase1b { round, votes }) = a.receive_1a(r0) {
            c0.receive_1b(i as u32, round, &votes);
        }
    }
    let (inst, m) = c0.propose(10).unwrap();
    let PaxosMsg::Phase2a { round, value, .. } = m else { panic!() };
    assert!(accs[0].receive_2a(inst, round, value).is_some());

    // c1 now runs Phase 1 with a higher round on all acceptors.
    let PaxosMsg::Phase1a { round: r1 } = c1.start_phase1(r0) else { panic!() };
    assert!(r1 > r0);
    for (i, a) in accs.iter_mut().enumerate() {
        if let Some(PaxosMsg::Phase1b { round, votes }) = a.receive_1a(r1) {
            c1.receive_1b(i as u32, round, &votes);
        }
    }
    // c1 wants 20, but the value pick rule forces 10 in instance 0.
    let (inst1, m1) = c1.propose(20).unwrap();
    assert_eq!(inst1, inst);
    let PaxosMsg::Phase2a { value, .. } = m1 else { panic!() };
    assert_eq!(value, 10, "value pick rule must force acceptor 0's vote");
}

/// Old-round Phase 2A messages arriving late cannot overwrite newer votes.
#[test]
fn late_phase2a_from_deposed_coordinator_rejected() {
    let mut acc: Acceptor<u32> = Acceptor::new();
    let old = Round::new(1, 0);
    let new = Round::new(2, 1);
    assert!(acc.receive_1a(old).is_some());
    assert!(acc.receive_1a(new).is_some());
    // Deposed coordinator's 2A in the old round bounces.
    assert!(acc.receive_2a(InstanceId(0), old, 99).is_none());
    // New coordinator's 2A lands.
    assert!(acc.receive_2a(InstanceId(0), new, 42).is_some());
    assert_eq!(acc.vote(InstanceId(0)).unwrap().v_val, 42);
}
