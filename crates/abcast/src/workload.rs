//! Workload generation helpers shared by all protocol experiments.
//!
//! The paper drives protocols two ways: *open loop* (proposers submit at a
//! configured aggregate rate — the throughput experiments of ch. 3/5) and
//! *closed loop* (a fixed number of clients each with one outstanding
//! command — the latency/throughput curves of ch. 4). [`Pacer`] implements
//! the paced open-loop side and lives here because the ordering
//! protocols' own drivers use it; everything else client-side (keyed
//! generators, Poisson arrivals, sessions) lives in the `workload`
//! crate, which re-exports `Pacer` as part of the unified client tier.

use simnet::time::{Dur, Time};

/// Open-loop pacing: converts a target rate (bytes per second) and message
/// size into a stream of send deadlines. Sends are batched into bursts of
/// `burst` messages to model application-level batching (timer-driven
/// senders emit several packets back to back, which is what makes
/// multi-sender ip-multicast lossy — Fig. 3.3).
#[derive(Clone, Debug)]
pub struct Pacer {
    msg_bytes: u32,
    burst: u32,
    interval: Dur,
    next_due: Time,
    stop_at: Time,
}

impl Pacer {
    /// Creates a pacer emitting `rate_bps` bits per second of `msg_bytes`
    /// messages, `burst` messages per wakeup.
    ///
    /// # Panics
    /// Panics if `rate_bps`, `msg_bytes`, or `burst` is zero.
    pub fn new(rate_bps: u64, msg_bytes: u32, burst: u32) -> Pacer {
        assert!(rate_bps > 0 && msg_bytes > 0 && burst > 0, "pacer parameters must be positive");
        let bits_per_burst = msg_bytes as u64 * 8 * burst as u64;
        let interval = Dur::nanos(bits_per_burst.saturating_mul(1_000_000_000) / rate_bps);
        Pacer { msg_bytes, burst, interval, next_due: Time::ZERO, stop_at: Time::MAX }
    }

    /// Stops emitting messages at `at` (workloads with a bounded duration).
    pub fn stop_at(&mut self, at: Time) {
        self.stop_at = at;
    }

    /// Message size in bytes.
    pub fn msg_bytes(&self) -> u32 {
        self.msg_bytes
    }

    /// Messages per burst.
    pub fn burst(&self) -> u32 {
        self.burst
    }

    /// Interval between bursts.
    pub fn interval(&self) -> Dur {
        self.interval
    }

    /// Changes the target rate, keeping message size and burst.
    pub fn set_rate(&mut self, rate_bps: u64) {
        assert!(rate_bps > 0, "rate must be positive");
        let bits_per_burst = self.msg_bytes as u64 * 8 * self.burst as u64;
        self.interval = Dur::nanos(bits_per_burst.saturating_mul(1_000_000_000) / rate_bps);
    }

    /// Number of messages due at `now`, advancing the internal deadline.
    /// Call on every timer tick; send the returned count of messages and
    /// re-arm the timer for [`Pacer::interval`].
    pub fn due(&mut self, now: Time) -> u32 {
        if now >= self.stop_at {
            return 0;
        }
        let mut due = 0;
        while self.next_due <= now {
            due += self.burst;
            self.next_due += self.interval;
        }
        due
    }

    /// Time of the next burst.
    pub fn next_due(&self) -> Time {
        self.next_due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pacer_hits_target_rate() {
        // 80 Mbps of 1 KB messages = 10_000 msgs/s.
        let mut p = Pacer::new(80_000_000, 1000, 1);
        let mut sent = 0u64;
        let mut t = Time::ZERO;
        while t < Time::from_secs(1) {
            sent += p.due(t) as u64;
            t += p.interval();
        }
        assert!((9_900..=10_100).contains(&sent), "sent {sent}");
    }

    #[test]
    fn bursts_are_grouped() {
        let mut p = Pacer::new(8_000_000, 1000, 8);
        // First wakeup at time zero yields one full burst.
        assert_eq!(p.due(Time::ZERO), 8);
        // Nothing more due until the next interval.
        assert_eq!(p.due(Time::ZERO + Dur::nanos(p.interval().as_nanos() - 1)), 0);
        assert_eq!(p.due(Time::ZERO + p.interval()), 8);
    }

    #[test]
    fn due_catches_up_after_stall() {
        let mut p = Pacer::new(8_000_000, 1000, 1);
        let five = Time::ZERO + p.interval() * 5;
        // Waking late yields all missed messages.
        assert_eq!(p.due(five), 6); // t=0..5 inclusive
    }

    #[test]
    fn set_rate_changes_interval() {
        let mut p = Pacer::new(8_000_000, 1000, 1);
        let i1 = p.interval();
        p.set_rate(16_000_000);
        assert_eq!(p.interval() * 2, i1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = Pacer::new(0, 1000, 1);
    }
}
