//! # abcast — shared atomic broadcast/multicast infrastructure
//!
//! Common vocabulary for every ordering protocol in this workspace
//! (`ringpaxos`, `baselines`, `multiring`):
//!
//! * [`checker`] — delivery logs plus checkers for the properties of
//!   thesis §2.2.3 (atomic broadcast) and §2.2.4 (atomic multicast);
//! * [`workload`] — the paced open-loop submitter ([`Pacer`]);
//! * standard metric names, so experiment drivers can read any protocol's
//!   throughput and latency the same way.
//!
//! Protocols deliver through both channels: they append to a
//! [`checker::SharedLog`] (correctness) and bump the [`metric`] counters
//! (performance).

pub mod checker;
pub mod workload;

/// Standard metric names recorded by every ordering protocol.
///
/// The counter names are pre-interned in every `simnet` metrics registry
/// (they are bumped for every delivered value, so protocols use the
/// [`metric::id`] handles on the hot path); the string constants are
/// derived from the same table, so the two can never drift apart.
pub mod metric {
    use simnet::stats::{builtin_name, mid};

    /// Payload bytes delivered to the application, per learner node.
    pub const DELIVERED_BYTES: &str = builtin_name(mid::DELIVERED_BYTES);
    /// Messages delivered to the application, per learner node.
    pub const DELIVERED_MSGS: &str = builtin_name(mid::DELIVERED_MSGS);
    /// Broadcast-to-delivery latency samples (recorded at the proposer's
    /// learner, as the paper measures).
    pub const LATENCY: &str = "abcast.latency";
    /// Consensus instances decided (coordinator side).
    pub const INSTANCES: &str = builtin_name(mid::INSTANCES);
    /// Messages a learner had to buffer out of order.
    pub const BUFFERED: &str = builtin_name(mid::BUFFERED);
    /// Values submitted by proposers (named `rp.proposed` for historical
    /// reasons; Ring Paxos recorded it first).
    pub const PROPOSED: &str = builtin_name(mid::PROPOSED);

    /// Pre-interned dense ids for the hot-path counters.
    pub mod id {
        pub use simnet::stats::mid::{
            BUFFERED, DELIVERED_BYTES, DELIVERED_MSGS, INSTANCES, PROPOSED,
        };
    }
}

pub use checker::{shared_log, DeliveryLog, MsgId, OrderViolation, SharedLog};
pub use workload::Pacer;
