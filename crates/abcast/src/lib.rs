//! # abcast — shared atomic broadcast/multicast infrastructure
//!
//! Common vocabulary for every ordering protocol in this workspace
//! (`ringpaxos`, `baselines`, `multiring`):
//!
//! * [`checker`] — delivery logs plus checkers for the properties of
//!   thesis §2.2.3 (atomic broadcast) and §2.2.4 (atomic multicast);
//! * [`workload`] — open-loop pacing and the paper's B⁺-tree workloads;
//! * standard metric names, so experiment drivers can read any protocol's
//!   throughput and latency the same way.
//!
//! Protocols deliver through both channels: they append to a
//! [`checker::SharedLog`] (correctness) and bump the [`metric`] counters
//! (performance).

pub mod checker;
pub mod workload;

/// Standard metric names recorded by every ordering protocol.
pub mod metric {
    /// Payload bytes delivered to the application, per learner node.
    pub const DELIVERED_BYTES: &str = "abcast.delivered_bytes";
    /// Messages delivered to the application, per learner node.
    pub const DELIVERED_MSGS: &str = "abcast.delivered_msgs";
    /// Broadcast-to-delivery latency samples (recorded at the proposer's
    /// learner, as the paper measures).
    pub const LATENCY: &str = "abcast.latency";
    /// Consensus instances decided (coordinator side).
    pub const INSTANCES: &str = "abcast.instances";
    /// Messages a learner had to buffer out of order.
    pub const BUFFERED: &str = "abcast.buffered";
}

pub use checker::{shared_log, DeliveryLog, MsgId, OrderViolation, SharedLog};
pub use workload::{Pacer, TreeWorkload};
