//! Correctness checkers for atomic broadcast and atomic multicast.
//!
//! Protocol tests share a [`DeliveryLog`]: every learner appends the ids of
//! messages as it delivers them, and the checkers verify the properties of
//! §2.2.3/§2.2.4 — uniform integrity, uniform agreement (modulo still-
//! running learners), and uniform total/partial order.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::sync::Mutex;

/// Globally unique id of a broadcast message.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MsgId(pub u64);

/// Per-learner delivery sequences, appended as the simulation runs.
#[derive(Debug, Default)]
pub struct DeliveryLog {
    sequences: Vec<Vec<MsgId>>,
    /// Restart marks per learner: `(log_len_at_restart, resume_pos,
    /// transferred)`. A learner that recovers from a checkpoint taken at
    /// global delivery position `resume_pos` records a mark when it
    /// comes back up; its subsequent deliveries re-apply the total order
    /// from that basis. `transferred` marks a basis adopted from a
    /// *peer's* checkpoint (state transfer): it may exceed what this
    /// learner's own incarnations covered, because the transferred state
    /// provably includes that prefix.
    restarts: Vec<Vec<(usize, usize, bool)>>,
    /// Configuration-epoch marks per learner: `(log_len_at_mark, epoch)`.
    /// Failover-enabled protocols record the epoch (round) each time the
    /// learner adopts a new configuration; epochs must never regress.
    epochs: Vec<Vec<(usize, u64)>>,
}

/// Shared handle protocols use to record deliveries.
pub type SharedLog = Arc<Mutex<DeliveryLog>>;

/// Creates a shared log for `learners` learners.
pub fn shared_log(learners: usize) -> SharedLog {
    Arc::new(Mutex::new(DeliveryLog::new(learners)))
}

impl DeliveryLog {
    /// Creates a log with one sequence per learner.
    pub fn new(learners: usize) -> DeliveryLog {
        DeliveryLog {
            sequences: vec![Vec::new(); learners],
            restarts: vec![Vec::new(); learners],
            epochs: vec![Vec::new(); learners],
        }
    }

    /// Records that `learner` delivered `msg`.
    pub fn deliver(&mut self, learner: usize, msg: MsgId) {
        self.sequences[learner].push(msg);
    }

    /// Records that `learner` restarted and resumed delivery from global
    /// position `resume_pos` (the delivery count covered by the
    /// checkpoint its recovered state was restored from; `0` for a
    /// from-scratch restart). Deliveries recorded after this mark are
    /// checked against the total order starting at `resume_pos`.
    pub fn mark_restart(&mut self, learner: usize, resume_pos: usize) {
        let at = self.sequences[learner].len();
        self.restarts[learner].push((at, resume_pos, false));
    }

    /// Records that `learner` adopted a *peer's* checkpoint covering
    /// `resume_pos` deliveries (state transfer mid-catch-up). Unlike
    /// [`DeliveryLog::mark_restart`], the basis may exceed this
    /// learner's own prior coverage.
    pub fn mark_state_transfer(&mut self, learner: usize, resume_pos: usize) {
        let at = self.sequences[learner].len();
        self.restarts[learner].push((at, resume_pos, true));
    }

    /// The restart marks recorded for `learner`:
    /// `(log_len_at_restart, resume_pos, transferred)`.
    pub fn restarts_of(&self, learner: usize) -> &[(usize, usize, bool)] {
        &self.restarts[learner]
    }

    /// Records that `learner` adopted configuration epoch `epoch` (a
    /// failover round, encoded by the protocol). Consecutive duplicate
    /// marks collapse, so re-announcements of the same epoch are free.
    pub fn mark_epoch(&mut self, learner: usize, epoch: u64) {
        if self.epochs[learner].last().map(|&(_, e)| e) == Some(epoch) {
            return;
        }
        let at = self.sequences[learner].len();
        self.epochs[learner].push((at, epoch));
    }

    /// The epoch marks recorded for `learner`: `(log_len_at_mark, epoch)`.
    pub fn epochs_of(&self, learner: usize) -> &[(usize, u64)] {
        &self.epochs[learner]
    }

    /// Configuration epochs must be monotonic per incarnation: a learner
    /// adopting a *lower* epoch than one it already held means stale
    /// configuration traffic (e.g. a deposed coordinator's 2B flow) got
    /// past the epoch fence. A restart legitimately resets the horizon —
    /// the fresh incarnation re-learns the current epoch from its log
    /// and the ring, so the check restarts at each restart mark.
    pub fn check_epoch_monotonic(&self) -> Result<(), OrderViolation> {
        for (l, marks) in self.epochs.iter().enumerate() {
            let mut restart_idx = 0usize;
            let mut horizon: Option<u64> = None;
            for &(at, epoch) in marks {
                while self.restarts[l].get(restart_idx).is_some_and(|&(r, _, _)| r <= at) {
                    restart_idx += 1;
                    horizon = None;
                }
                if let Some(h) = horizon {
                    if epoch < h {
                        return Err(OrderViolation::EpochRegression {
                            learner: l,
                            at,
                            from: h,
                            to: epoch,
                        });
                    }
                }
                horizon = Some(epoch);
            }
        }
        Ok(())
    }

    /// The delivery sequence of one learner.
    pub fn sequence(&self, learner: usize) -> &[MsgId] {
        &self.sequences[learner]
    }

    /// Number of learners tracked.
    pub fn learners(&self) -> usize {
        self.sequences.len()
    }

    /// Total deliveries across learners.
    pub fn total_deliveries(&self) -> usize {
        self.sequences.iter().map(|s| s.len()).sum()
    }

    /// Uniform integrity: no learner delivers the same message twice, and
    /// every delivered message was broadcast.
    pub fn check_integrity(&self, broadcast: &HashSet<MsgId>) -> Result<(), OrderViolation> {
        for (l, seq) in self.sequences.iter().enumerate() {
            let mut seen = HashSet::with_capacity(seq.len());
            for &m in seq {
                if !seen.insert(m) {
                    return Err(OrderViolation::Duplicate { learner: l, msg: m });
                }
                if !broadcast.contains(&m) {
                    return Err(OrderViolation::Phantom { learner: l, msg: m });
                }
            }
        }
        Ok(())
    }

    /// Uniform total order for atomic *broadcast*: every learner's sequence
    /// must be a prefix of the longest sequence (learners may lag, but may
    /// not reorder or skip).
    pub fn check_total_order(&self) -> Result<(), OrderViolation> {
        let longest = match self.sequences.iter().max_by_key(|s| s.len()) {
            Some(s) => s,
            None => return Ok(()),
        };
        for (l, seq) in self.sequences.iter().enumerate() {
            for (pos, (&a, &b)) in seq.iter().zip(longest.iter()).enumerate() {
                if a != b {
                    return Err(OrderViolation::Diverged {
                        learner: l,
                        position: pos,
                        got: a,
                        expected: b,
                    });
                }
            }
        }
        Ok(())
    }

    /// Uniform partial order for atomic *multicast*: any two learners that
    /// both deliver messages `m` and `m'` deliver them in the same relative
    /// order (§2.2.4). Quadratic in common messages — intended for tests.
    pub fn check_partial_order(&self) -> Result<(), OrderViolation> {
        let positions: Vec<HashMap<MsgId, usize>> = self
            .sequences
            .iter()
            .map(|seq| seq.iter().enumerate().map(|(i, &m)| (m, i)).collect())
            .collect();
        for a in 0..self.sequences.len() {
            for b in (a + 1)..self.sequences.len() {
                let common: Vec<MsgId> = self.sequences[a]
                    .iter()
                    .copied()
                    .filter(|m| positions[b].contains_key(m))
                    .collect();
                for i in 0..common.len() {
                    for j in (i + 1)..common.len() {
                        let (m1, m2) = (common[i], common[j]);
                        // m1 precedes m2 at a (by construction); check b.
                        if positions[b][&m1] > positions[b][&m2] {
                            return Err(OrderViolation::PartialOrder {
                                learner_a: a,
                                learner_b: b,
                                first: m1,
                                second: m2,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Crash-aware agreement at quiescence: verifies learners that
    /// restarted mid-run ([`DeliveryLog::mark_restart`]) for **no lost
    /// and no duplicated deliveries** against the total order.
    ///
    /// The raw sequence of a restarted learner legitimately re-contains
    /// messages delivered between its last checkpoint and the crash —
    /// the recovered *state* excludes them, so re-delivery is correct,
    /// not duplication. The check therefore works per **epoch** (the
    /// deliveries of one incarnation): each epoch must replay the
    /// reference order exactly from its recorded resume basis (no
    /// duplicate or skipped message relative to the state it resumed
    /// from), an epoch may not resume beyond what the previous
    /// incarnations covered (that gap would be lost deliveries), and the
    /// final epoch must reach the reference end (nothing lost overall).
    ///
    /// The reference order is the longest sequence of an uninterrupted
    /// learner in `expected`; at least one such learner is required.
    ///
    /// Configuration epochs, when recorded ([`DeliveryLog::mark_epoch`]),
    /// are verified monotonic first: agreement across a coordinator
    /// failover only means anything if no learner regressed to a stale
    /// epoch along the way.
    pub fn check_crash_agreement(&self, expected: &[usize]) -> Result<(), OrderViolation> {
        self.check_epoch_monotonic()?;
        let reference = expected
            .iter()
            .filter(|&&l| self.restarts[l].is_empty())
            .map(|&l| &self.sequences[l])
            .max_by_key(|s| s.len())
            .expect("crash-aware agreement needs an uninterrupted reference learner");
        for &l in expected {
            let seq = &self.sequences[l];
            // Epoch boundaries: (start index, basis position, transferred).
            let mut epochs: Vec<(usize, usize, bool)> = vec![(0, 0, false)];
            epochs.extend(self.restarts[l].iter().copied());
            let mut covered = 0usize; // reference prefix known applied
            for (e, &(start, basis, transferred)) in epochs.iter().enumerate() {
                let end = epochs.get(e + 1).map_or(seq.len(), |&(s, _, _)| s);
                if basis > covered && !transferred {
                    return Err(OrderViolation::ResumeGap {
                        learner: l,
                        covered_to: covered,
                        resumed_at: basis,
                    });
                }
                for (j, &got) in seq[start..end].iter().enumerate() {
                    let pos = basis + j;
                    match reference.get(pos) {
                        Some(&want) if want == got => {}
                        Some(&want) => {
                            return Err(OrderViolation::Diverged {
                                learner: l,
                                position: pos,
                                got,
                                expected: want,
                            });
                        }
                        None => {
                            return Err(OrderViolation::Phantom { learner: l, msg: got });
                        }
                    }
                }
                covered = covered.max(basis + (end - start));
            }
            if covered != reference.len() {
                return Err(OrderViolation::Lagging {
                    learner: l,
                    delivered: covered,
                    expected: reference.len(),
                });
            }
        }
        Ok(())
    }

    /// Uniform agreement at quiescence: every learner in `expected` has
    /// delivered the same number of messages as the most advanced one.
    pub fn check_agreement_at_quiescence(&self, expected: &[usize]) -> Result<(), OrderViolation> {
        let max = expected.iter().map(|&l| self.sequences[l].len()).max().unwrap_or(0);
        for &l in expected {
            if self.sequences[l].len() != max {
                return Err(OrderViolation::Lagging {
                    learner: l,
                    delivered: self.sequences[l].len(),
                    expected: max,
                });
            }
        }
        Ok(())
    }
}

/// A violated broadcast property, with enough context to debug it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderViolation {
    /// A learner delivered the same message twice.
    Duplicate {
        /// Offending learner.
        learner: usize,
        /// Duplicated message.
        msg: MsgId,
    },
    /// A learner delivered a message nobody broadcast.
    Phantom {
        /// Offending learner.
        learner: usize,
        /// Unknown message.
        msg: MsgId,
    },
    /// Two learners disagree at a log position.
    Diverged {
        /// Offending learner.
        learner: usize,
        /// Log position of the disagreement.
        position: usize,
        /// What the learner delivered there.
        got: MsgId,
        /// What the reference sequence has there.
        expected: MsgId,
    },
    /// Two learners deliver a common pair in opposite orders.
    PartialOrder {
        /// First learner.
        learner_a: usize,
        /// Second learner.
        learner_b: usize,
        /// Message `learner_a` delivered first.
        first: MsgId,
        /// Message `learner_a` delivered second.
        second: MsgId,
    },
    /// A restarted learner resumed beyond what its earlier incarnations
    /// had covered: the deliveries in between are lost (applied by no
    /// incarnation of the learner's state).
    ResumeGap {
        /// Offending learner.
        learner: usize,
        /// Reference prefix its earlier incarnations had applied.
        covered_to: usize,
        /// Position the recovered state resumed from.
        resumed_at: usize,
    },
    /// A learner adopted a lower configuration epoch than one it had
    /// already held: stale-epoch traffic got past the fence.
    EpochRegression {
        /// Offending learner.
        learner: usize,
        /// Delivery-log position of the regressing mark.
        at: usize,
        /// Epoch the learner already held.
        from: u64,
        /// Lower epoch it adopted.
        to: u64,
    },
    /// A learner stopped short of the others at quiescence.
    Lagging {
        /// Offending learner.
        learner: usize,
        /// How many messages it delivered.
        delivered: usize,
        /// How many it should have delivered.
        expected: usize,
    },
}

impl std::fmt::Display for OrderViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrderViolation::Duplicate { learner, msg } => {
                write!(f, "learner {learner} delivered {msg:?} twice")
            }
            OrderViolation::Phantom { learner, msg } => {
                write!(f, "learner {learner} delivered unbroadcast {msg:?}")
            }
            OrderViolation::Diverged { learner, position, got, expected } => write!(
                f,
                "learner {learner} diverged at position {position}: got {got:?}, expected {expected:?}"
            ),
            OrderViolation::PartialOrder { learner_a, learner_b, first, second } => write!(
                f,
                "learners {learner_a}/{learner_b} order {first:?},{second:?} inconsistently"
            ),
            OrderViolation::ResumeGap { learner, covered_to, resumed_at } => write!(
                f,
                "learner {learner} resumed at {resumed_at} but had only covered {covered_to}: \
                 deliveries in between are lost"
            ),
            OrderViolation::EpochRegression { learner, at, from, to } => write!(
                f,
                "learner {learner} regressed from epoch {from} to {to} at position {at}"
            ),
            OrderViolation::Lagging { learner, delivered, expected } => {
                write!(f, "learner {learner} delivered {delivered} of {expected} messages")
            }
        }
    }
}

impl std::error::Error for OrderViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<MsgId> {
        v.iter().map(|&x| MsgId(x)).collect()
    }

    fn log_from(seqs: &[&[u64]]) -> DeliveryLog {
        let mut log = DeliveryLog::new(seqs.len());
        for (l, s) in seqs.iter().enumerate() {
            for &m in *s {
                log.deliver(l, MsgId(m));
            }
        }
        log
    }

    #[test]
    fn total_order_accepts_prefixes() {
        let log = log_from(&[&[1, 2, 3], &[1, 2], &[]]);
        assert!(log.check_total_order().is_ok());
    }

    #[test]
    fn total_order_rejects_divergence() {
        let log = log_from(&[&[1, 2, 3], &[1, 3]]);
        let err = log.check_total_order().unwrap_err();
        assert!(matches!(err, OrderViolation::Diverged { learner: 1, position: 1, .. }));
    }

    #[test]
    fn integrity_rejects_duplicates_and_phantoms() {
        let broadcast: HashSet<MsgId> = ids(&[1, 2]).into_iter().collect();
        let dup = log_from(&[&[1, 1]]);
        assert!(matches!(dup.check_integrity(&broadcast), Err(OrderViolation::Duplicate { .. })));
        let phantom = log_from(&[&[1, 9]]);
        assert!(matches!(phantom.check_integrity(&broadcast), Err(OrderViolation::Phantom { .. })));
        let ok = log_from(&[&[1, 2], &[2, 1]]);
        assert!(ok.check_integrity(&broadcast).is_ok());
    }

    #[test]
    fn partial_order_accepts_disjoint_and_consistent() {
        // Learner 0 subscribes to groups {A,B}, learner 1 only to B;
        // common messages 10,11 are ordered the same way.
        let log = log_from(&[&[1, 10, 2, 11], &[10, 11]]);
        assert!(log.check_partial_order().is_ok());
    }

    #[test]
    fn partial_order_rejects_inversion() {
        let log = log_from(&[&[10, 11], &[11, 10]]);
        assert!(matches!(log.check_partial_order(), Err(OrderViolation::PartialOrder { .. })));
    }

    #[test]
    fn agreement_at_quiescence() {
        let log = log_from(&[&[1, 2], &[1, 2], &[1]]);
        assert!(log.check_agreement_at_quiescence(&[0, 1]).is_ok());
        assert!(matches!(
            log.check_agreement_at_quiescence(&[0, 1, 2]),
            Err(OrderViolation::Lagging { learner: 2, .. })
        ));
    }

    #[test]
    fn display_messages_are_informative() {
        let v = OrderViolation::Duplicate { learner: 3, msg: MsgId(7) };
        assert!(v.to_string().contains("learner 3"));
        let g = OrderViolation::ResumeGap { learner: 1, covered_to: 2, resumed_at: 5 };
        assert!(g.to_string().contains("lost"));
    }

    #[test]
    fn crash_agreement_accepts_checkpoint_resume_with_redelivery() {
        // Learner 1 delivered 1..=4, checkpointed at position 2, crashed,
        // and resumed from the checkpoint: 3,4 are re-delivered against
        // the recovered state — correct, not duplication.
        let mut log = DeliveryLog::new(2);
        for m in [1, 2, 3, 4, 5, 6] {
            log.deliver(0, MsgId(m));
        }
        for m in [1, 2, 3, 4] {
            log.deliver(1, MsgId(m));
        }
        log.mark_restart(1, 2);
        for m in [3, 4, 5, 6] {
            log.deliver(1, MsgId(m));
        }
        assert!(log.check_crash_agreement(&[0, 1]).is_ok());
        assert_eq!(log.restarts_of(1), &[(4, 2, false)]);
    }

    #[test]
    fn crash_agreement_accepts_state_transfer_beyond_own_coverage() {
        // Learner 1 crashed at position 1, but its catch-up peer had
        // already trimmed below its own checkpoint at position 3: the
        // peer's checkpoint is transferred and delivery resumes at 3 —
        // legitimate, because the transferred state covers the prefix.
        let mut log = DeliveryLog::new(2);
        for m in [1, 2, 3, 4, 5] {
            log.deliver(0, MsgId(m));
        }
        log.deliver(1, MsgId(1));
        log.mark_state_transfer(1, 3);
        for m in [4, 5] {
            log.deliver(1, MsgId(m));
        }
        assert!(log.check_crash_agreement(&[0, 1]).is_ok());
        // The same basis without the transfer provenance is a gap.
        let mut bad = DeliveryLog::new(2);
        for m in [1, 2, 3, 4, 5] {
            bad.deliver(0, MsgId(m));
        }
        bad.deliver(1, MsgId(1));
        bad.mark_restart(1, 3);
        for m in [4, 5] {
            bad.deliver(1, MsgId(m));
        }
        assert!(matches!(
            bad.check_crash_agreement(&[0, 1]),
            Err(OrderViolation::ResumeGap { learner: 1, covered_to: 1, resumed_at: 3 })
        ));
    }

    #[test]
    fn crash_agreement_rejects_resume_gap() {
        // Learner restarts claiming a checkpoint at 3 but had only ever
        // delivered 2 messages: message 3 was applied by no incarnation.
        let mut log = DeliveryLog::new(2);
        for m in [1, 2, 3, 4] {
            log.deliver(0, MsgId(m));
        }
        for m in [1, 2] {
            log.deliver(1, MsgId(m));
        }
        log.mark_restart(1, 3);
        log.deliver(1, MsgId(4));
        assert!(matches!(
            log.check_crash_agreement(&[0, 1]),
            Err(OrderViolation::ResumeGap { learner: 1, covered_to: 2, resumed_at: 3 })
        ));
    }

    #[test]
    fn crash_agreement_rejects_post_restart_divergence_and_duplicates() {
        let mut log = DeliveryLog::new(2);
        for m in [1, 2, 3, 4] {
            log.deliver(0, MsgId(m));
        }
        for m in [1, 2] {
            log.deliver(1, MsgId(m));
        }
        log.mark_restart(1, 2);
        // Duplicates message 2 against the recovered basis (state already
        // contains it): a real double-apply.
        for m in [2, 3, 4] {
            log.deliver(1, MsgId(m));
        }
        assert!(matches!(
            log.check_crash_agreement(&[0, 1]),
            Err(OrderViolation::Diverged { learner: 1, position: 2, .. })
        ));
    }

    #[test]
    fn crash_agreement_rejects_lost_suffix() {
        let mut log = DeliveryLog::new(2);
        for m in [1, 2, 3, 4] {
            log.deliver(0, MsgId(m));
        }
        log.deliver(1, MsgId(1));
        log.mark_restart(1, 1);
        log.deliver(1, MsgId(2));
        // Never catches up to 3,4.
        assert!(matches!(
            log.check_crash_agreement(&[0, 1]),
            Err(OrderViolation::Lagging { learner: 1, delivered: 2, expected: 4 })
        ));
    }

    #[test]
    fn epoch_marks_collapse_duplicates_and_stay_monotonic() {
        let mut log = DeliveryLog::new(1);
        log.mark_epoch(0, 5);
        log.deliver(0, MsgId(1));
        log.mark_epoch(0, 5); // duplicate announcement: collapsed
        log.mark_epoch(0, 7);
        assert_eq!(log.epochs_of(0), &[(0, 5), (1, 7)]);
        assert!(log.check_epoch_monotonic().is_ok());
    }

    #[test]
    fn epoch_regression_is_a_violation() {
        let mut log = DeliveryLog::new(2);
        log.deliver(0, MsgId(1));
        log.mark_epoch(1, 7);
        log.deliver(1, MsgId(1));
        log.mark_epoch(1, 5); // a stale coordinator's layout got adopted
        assert!(matches!(
            log.check_epoch_monotonic(),
            Err(OrderViolation::EpochRegression { learner: 1, at: 1, from: 7, to: 5 })
        ));
        // ... and crash agreement reports it even when sequences agree.
        assert!(matches!(
            log.check_crash_agreement(&[0, 1]),
            Err(OrderViolation::EpochRegression { .. })
        ));
    }

    #[test]
    fn epoch_horizon_resets_at_restart_marks() {
        // A respawned learner re-learns the current epoch from scratch:
        // seeing epoch 3 again *after* its restart mark is not a
        // regression of the fresh incarnation.
        let mut log = DeliveryLog::new(2);
        for m in [1, 2] {
            log.deliver(0, MsgId(m));
        }
        log.mark_epoch(1, 7);
        log.deliver(1, MsgId(1));
        log.mark_restart(1, 0);
        log.mark_epoch(1, 3);
        log.mark_epoch(1, 7);
        for m in [1, 2] {
            log.deliver(1, MsgId(m));
        }
        assert!(log.check_epoch_monotonic().is_ok());
        assert!(log.check_crash_agreement(&[0, 1]).is_ok());
    }

    #[test]
    fn crash_agreement_handles_multiple_restarts_and_plain_learners() {
        let mut log = DeliveryLog::new(3);
        for m in [1, 2, 3, 4, 5] {
            log.deliver(0, MsgId(m));
        }
        // Learner 1: two restarts, from-scratch then from a checkpoint.
        log.deliver(1, MsgId(1));
        log.mark_restart(1, 0);
        for m in [1, 2, 3] {
            log.deliver(1, MsgId(m));
        }
        log.mark_restart(1, 3);
        for m in [4, 5] {
            log.deliver(1, MsgId(m));
        }
        // Learner 2: uninterrupted.
        for m in [1, 2, 3, 4, 5] {
            log.deliver(2, MsgId(m));
        }
        assert!(log.check_crash_agreement(&[0, 1, 2]).is_ok());
    }
}
