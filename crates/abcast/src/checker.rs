//! Correctness checkers for atomic broadcast and atomic multicast.
//!
//! Protocol tests share a [`DeliveryLog`]: every learner appends the ids of
//! messages as it delivers them, and the checkers verify the properties of
//! §2.2.3/§2.2.4 — uniform integrity, uniform agreement (modulo still-
//! running learners), and uniform total/partial order.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// Globally unique id of a broadcast message.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MsgId(pub u64);

/// Per-learner delivery sequences, appended as the simulation runs.
#[derive(Debug, Default)]
pub struct DeliveryLog {
    sequences: Vec<Vec<MsgId>>,
}

/// Shared handle protocols use to record deliveries.
pub type SharedLog = Rc<RefCell<DeliveryLog>>;

/// Creates a shared log for `learners` learners.
pub fn shared_log(learners: usize) -> SharedLog {
    Rc::new(RefCell::new(DeliveryLog::new(learners)))
}

impl DeliveryLog {
    /// Creates a log with one sequence per learner.
    pub fn new(learners: usize) -> DeliveryLog {
        DeliveryLog { sequences: vec![Vec::new(); learners] }
    }

    /// Records that `learner` delivered `msg`.
    pub fn deliver(&mut self, learner: usize, msg: MsgId) {
        self.sequences[learner].push(msg);
    }

    /// The delivery sequence of one learner.
    pub fn sequence(&self, learner: usize) -> &[MsgId] {
        &self.sequences[learner]
    }

    /// Number of learners tracked.
    pub fn learners(&self) -> usize {
        self.sequences.len()
    }

    /// Total deliveries across learners.
    pub fn total_deliveries(&self) -> usize {
        self.sequences.iter().map(|s| s.len()).sum()
    }

    /// Uniform integrity: no learner delivers the same message twice, and
    /// every delivered message was broadcast.
    pub fn check_integrity(&self, broadcast: &HashSet<MsgId>) -> Result<(), OrderViolation> {
        for (l, seq) in self.sequences.iter().enumerate() {
            let mut seen = HashSet::with_capacity(seq.len());
            for &m in seq {
                if !seen.insert(m) {
                    return Err(OrderViolation::Duplicate { learner: l, msg: m });
                }
                if !broadcast.contains(&m) {
                    return Err(OrderViolation::Phantom { learner: l, msg: m });
                }
            }
        }
        Ok(())
    }

    /// Uniform total order for atomic *broadcast*: every learner's sequence
    /// must be a prefix of the longest sequence (learners may lag, but may
    /// not reorder or skip).
    pub fn check_total_order(&self) -> Result<(), OrderViolation> {
        let longest = match self.sequences.iter().max_by_key(|s| s.len()) {
            Some(s) => s,
            None => return Ok(()),
        };
        for (l, seq) in self.sequences.iter().enumerate() {
            for (pos, (&a, &b)) in seq.iter().zip(longest.iter()).enumerate() {
                if a != b {
                    return Err(OrderViolation::Diverged {
                        learner: l,
                        position: pos,
                        got: a,
                        expected: b,
                    });
                }
            }
        }
        Ok(())
    }

    /// Uniform partial order for atomic *multicast*: any two learners that
    /// both deliver messages `m` and `m'` deliver them in the same relative
    /// order (§2.2.4). Quadratic in common messages — intended for tests.
    pub fn check_partial_order(&self) -> Result<(), OrderViolation> {
        let positions: Vec<HashMap<MsgId, usize>> = self
            .sequences
            .iter()
            .map(|seq| seq.iter().enumerate().map(|(i, &m)| (m, i)).collect())
            .collect();
        for a in 0..self.sequences.len() {
            for b in (a + 1)..self.sequences.len() {
                let common: Vec<MsgId> = self.sequences[a]
                    .iter()
                    .copied()
                    .filter(|m| positions[b].contains_key(m))
                    .collect();
                for i in 0..common.len() {
                    for j in (i + 1)..common.len() {
                        let (m1, m2) = (common[i], common[j]);
                        // m1 precedes m2 at a (by construction); check b.
                        if positions[b][&m1] > positions[b][&m2] {
                            return Err(OrderViolation::PartialOrder {
                                learner_a: a,
                                learner_b: b,
                                first: m1,
                                second: m2,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Uniform agreement at quiescence: every learner in `expected` has
    /// delivered the same number of messages as the most advanced one.
    pub fn check_agreement_at_quiescence(&self, expected: &[usize]) -> Result<(), OrderViolation> {
        let max = expected.iter().map(|&l| self.sequences[l].len()).max().unwrap_or(0);
        for &l in expected {
            if self.sequences[l].len() != max {
                return Err(OrderViolation::Lagging {
                    learner: l,
                    delivered: self.sequences[l].len(),
                    expected: max,
                });
            }
        }
        Ok(())
    }
}

/// A violated broadcast property, with enough context to debug it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderViolation {
    /// A learner delivered the same message twice.
    Duplicate {
        /// Offending learner.
        learner: usize,
        /// Duplicated message.
        msg: MsgId,
    },
    /// A learner delivered a message nobody broadcast.
    Phantom {
        /// Offending learner.
        learner: usize,
        /// Unknown message.
        msg: MsgId,
    },
    /// Two learners disagree at a log position.
    Diverged {
        /// Offending learner.
        learner: usize,
        /// Log position of the disagreement.
        position: usize,
        /// What the learner delivered there.
        got: MsgId,
        /// What the reference sequence has there.
        expected: MsgId,
    },
    /// Two learners deliver a common pair in opposite orders.
    PartialOrder {
        /// First learner.
        learner_a: usize,
        /// Second learner.
        learner_b: usize,
        /// Message `learner_a` delivered first.
        first: MsgId,
        /// Message `learner_a` delivered second.
        second: MsgId,
    },
    /// A learner stopped short of the others at quiescence.
    Lagging {
        /// Offending learner.
        learner: usize,
        /// How many messages it delivered.
        delivered: usize,
        /// How many it should have delivered.
        expected: usize,
    },
}

impl std::fmt::Display for OrderViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrderViolation::Duplicate { learner, msg } => {
                write!(f, "learner {learner} delivered {msg:?} twice")
            }
            OrderViolation::Phantom { learner, msg } => {
                write!(f, "learner {learner} delivered unbroadcast {msg:?}")
            }
            OrderViolation::Diverged { learner, position, got, expected } => write!(
                f,
                "learner {learner} diverged at position {position}: got {got:?}, expected {expected:?}"
            ),
            OrderViolation::PartialOrder { learner_a, learner_b, first, second } => write!(
                f,
                "learners {learner_a}/{learner_b} order {first:?},{second:?} inconsistently"
            ),
            OrderViolation::Lagging { learner, delivered, expected } => {
                write!(f, "learner {learner} delivered {delivered} of {expected} messages")
            }
        }
    }
}

impl std::error::Error for OrderViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<MsgId> {
        v.iter().map(|&x| MsgId(x)).collect()
    }

    fn log_from(seqs: &[&[u64]]) -> DeliveryLog {
        let mut log = DeliveryLog::new(seqs.len());
        for (l, s) in seqs.iter().enumerate() {
            for &m in *s {
                log.deliver(l, MsgId(m));
            }
        }
        log
    }

    #[test]
    fn total_order_accepts_prefixes() {
        let log = log_from(&[&[1, 2, 3], &[1, 2], &[]]);
        assert!(log.check_total_order().is_ok());
    }

    #[test]
    fn total_order_rejects_divergence() {
        let log = log_from(&[&[1, 2, 3], &[1, 3]]);
        let err = log.check_total_order().unwrap_err();
        assert!(matches!(err, OrderViolation::Diverged { learner: 1, position: 1, .. }));
    }

    #[test]
    fn integrity_rejects_duplicates_and_phantoms() {
        let broadcast: HashSet<MsgId> = ids(&[1, 2]).into_iter().collect();
        let dup = log_from(&[&[1, 1]]);
        assert!(matches!(dup.check_integrity(&broadcast), Err(OrderViolation::Duplicate { .. })));
        let phantom = log_from(&[&[1, 9]]);
        assert!(matches!(phantom.check_integrity(&broadcast), Err(OrderViolation::Phantom { .. })));
        let ok = log_from(&[&[1, 2], &[2, 1]]);
        assert!(ok.check_integrity(&broadcast).is_ok());
    }

    #[test]
    fn partial_order_accepts_disjoint_and_consistent() {
        // Learner 0 subscribes to groups {A,B}, learner 1 only to B;
        // common messages 10,11 are ordered the same way.
        let log = log_from(&[&[1, 10, 2, 11], &[10, 11]]);
        assert!(log.check_partial_order().is_ok());
    }

    #[test]
    fn partial_order_rejects_inversion() {
        let log = log_from(&[&[10, 11], &[11, 10]]);
        assert!(matches!(log.check_partial_order(), Err(OrderViolation::PartialOrder { .. })));
    }

    #[test]
    fn agreement_at_quiescence() {
        let log = log_from(&[&[1, 2], &[1, 2], &[1]]);
        assert!(log.check_agreement_at_quiescence(&[0, 1]).is_ok());
        assert!(matches!(
            log.check_agreement_at_quiescence(&[0, 1, 2]),
            Err(OrderViolation::Lagging { learner: 2, .. })
        ));
    }

    #[test]
    fn display_messages_are_informative() {
        let v = OrderViolation::Duplicate { learner: 3, msg: MsgId(7) };
        assert!(v.to_string().contains("learner 3"));
    }
}
