//! Property tests for the order checkers: they must accept everything a
//! correct broadcast can produce and reject every violation we can
//! construct.

use abcast::{DeliveryLog, MsgId};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Prefixes of a common sequence always satisfy total order and
    /// integrity.
    #[test]
    fn prefixes_always_pass(
        base in prop::collection::vec(0u64..1000, 1..100),
        cuts in prop::collection::vec(0usize..100, 1..6),
    ) {
        // Deduplicate while preserving order (a broadcast run delivers
        // each message once).
        let mut seen = HashSet::new();
        let base: Vec<u64> = base.into_iter().filter(|m| seen.insert(*m)).collect();
        let mut log = DeliveryLog::new(cuts.len());
        for (l, cut) in cuts.iter().enumerate() {
            let n = cut % (base.len() + 1);
            for &m in &base[..n] {
                log.deliver(l, MsgId(m));
            }
        }
        prop_assert!(log.check_total_order().is_ok());
        prop_assert!(log.check_partial_order().is_ok());
        let broadcast: HashSet<MsgId> = base.iter().map(|&m| MsgId(m)).collect();
        prop_assert!(log.check_integrity(&broadcast).is_ok());
    }

    /// Swapping two adjacent distinct messages in one learner's sequence
    /// is always caught by the total-order checker (when another learner
    /// has the original order at those positions).
    #[test]
    fn swaps_always_fail(
        base in prop::collection::vec(0u64..1000, 2..80),
        at in 0usize..80,
    ) {
        let mut seen = HashSet::new();
        let base: Vec<u64> = base.into_iter().filter(|m| seen.insert(*m)).collect();
        prop_assume!(base.len() >= 2);
        let at = at % (base.len() - 1);
        let mut swapped = base.clone();
        swapped.swap(at, at + 1);
        prop_assume!(base[at] != base[at + 1]);

        let mut log = DeliveryLog::new(2);
        for &m in &base {
            log.deliver(0, MsgId(m));
        }
        for &m in &swapped {
            log.deliver(1, MsgId(m));
        }
        prop_assert!(log.check_total_order().is_err());
        prop_assert!(log.check_partial_order().is_err());
    }

    /// A duplicated delivery is always caught by the integrity checker.
    #[test]
    fn duplicates_always_fail(
        base in prop::collection::vec(0u64..1000, 1..80),
        dup in 0usize..80,
    ) {
        let mut seen = HashSet::new();
        let base: Vec<u64> = base.into_iter().filter(|m| seen.insert(*m)).collect();
        let dup = dup % base.len();
        let mut log = DeliveryLog::new(1);
        for &m in &base {
            log.deliver(0, MsgId(m));
        }
        log.deliver(0, MsgId(base[dup]));
        let broadcast: HashSet<MsgId> = base.iter().map(|&m| MsgId(m)).collect();
        prop_assert!(log.check_integrity(&broadcast).is_err());
    }
}
