//! # hpsmr — High-Performance State-Machine Replication
//!
//! A comprehensive Rust reproduction of *High Performance State-Machine
//! Replication* (Marandi, Primi, Pedone — DSN 2011) and the systems it
//! builds on, as described in the companion USI dissertation:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`simnet`] | deterministic discrete-event cluster simulator (gigabit switch, ip-multicast, lossy UDP, TCP, multi-core CPUs, SSDs) |
//! | [`paxos`] | Basic Paxos roles (thesis Algorithm 1) |
//! | [`abcast`] | atomic broadcast/multicast checkers and workloads |
//! | [`ringpaxos`] | M-Ring Paxos & U-Ring Paxos (ch. 3) |
//! | [`baselines`] | LCR, Libpaxos, S-Paxos, Spread/Totem, PFSB comparison protocols |
//! | [`multiring`] | Multi-Ring Paxos atomic multicast (ch. 5) |
//! | [`btree`] | the replicated B⁺-tree service (§4.4.2) |
//! | [`workload`] | the unified client tier: arrival processes, keyed/Zipfian workloads, sessions, the million-session table |
//! | [`hpsmr_core`] | speculation + state partitioning over M-Ring Paxos — the DSN 2011 contribution (ch. 4) |
//! | [`psmr`] | parallel state-machine replication: P-SMR and the execution-model survey (ch. 6) |
//!
//! Start with the examples (`cargo run --release --example quickstart`)
//! or the experiment runner
//! (`cargo run --release -p bench --bin figures -- list`).

pub use abcast;
pub use baselines;
pub use btree;
pub use hpsmr_core;
pub use multiring;
pub use paxos;
pub use psmr;
pub use ringpaxos;
pub use simnet;
pub use workload;
