//! Quickstart: atomic broadcast with M-Ring Paxos in a few lines.
//!
//! Deploys a three-acceptor ring with two proposers offering 100 Mbps of
//! 8 KB messages each, runs one simulated second, and reports delivered
//! throughput, latency, and ordering guarantees.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ringpaxos::cluster::{deploy_mring, MRingOptions};
use simnet::prelude::*;

fn main() {
    let mut sim = Sim::new(SimConfig::default());

    let opts = MRingOptions {
        ring_size: 3,   // f = 1: two acceptors plus the coordinator
        n_learners: 2,  // receivers
        n_proposers: 2, // open-loop senders (also learners)
        proposer_rate_bps: 100_000_000,
        msg_bytes: 8192,
        ..MRingOptions::default()
    };
    let d = deploy_mring(&mut sim, &opts, |_cfg| {});

    sim.run_until(Time::from_secs(1));

    let m = sim.metrics();
    let bytes = m.counter(d.learners[0], "abcast.delivered_bytes");
    let msgs = m.counter(d.learners[0], "abcast.delivered_msgs");
    let lat = m.latency("abcast.latency");

    println!("M-Ring Paxos quickstart (1 simulated second)");
    println!("  delivered at learner 0 : {msgs} messages, {:.0} Mbps", mbps(bytes, Dur::secs(1)));
    println!("  broadcast latency      : mean {}, p99 {}", lat.mean, lat.p99);
    println!(
        "  coordinator CPU        : {:.0}%",
        sim.cpu_busy(d.coordinator(), 0).as_secs_f64() * 100.0
    );

    // The properties the protocol guarantees (thesis §2.2.3):
    let log = d.log.lock().unwrap();
    log.check_total_order().expect("uniform total order");
    println!("  uniform total order    : verified across {} learners", log.learners());
}
