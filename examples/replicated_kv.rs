//! The paper's replicated B⁺-tree service under full state-machine
//! replication: closed-loop clients issue range queries against two
//! replicas ordered by M-Ring Paxos, next to a stand-alone server
//! handling the same load (the CS baseline of Fig. 4.1).
//!
//! ```text
//! cargo run --release --example replicated_kv
//! ```

use hpsmr_core::deploy::{deploy_cs, deploy_smr, SmrOptions};
use hpsmr_core::{SMR_COMPLETED, SMR_LATENCY};
use simnet::prelude::*;
use workload::WorkloadKind;

fn run_cs(clients: usize, secs: u64) -> (f64, Dur) {
    let mut sim = Sim::new(SimConfig::default());
    let cs = deploy_cs(&mut sim, clients, WorkloadKind::Queries, None);
    sim.run_until(Time::from_secs(secs));
    let done: u64 = cs.clients.iter().map(|&c| sim.metrics().counter(c, SMR_COMPLETED)).sum();
    (done as f64 / secs as f64 / 1e3, sim.metrics().latency(SMR_LATENCY).mean)
}

fn run_smr(clients: usize, secs: u64) -> (f64, Dur, bool) {
    let mut sim = Sim::new(SimConfig::default());
    let opts = SmrOptions {
        n_replicas: 2,
        n_clients: clients,
        workload: WorkloadKind::Queries,
        ..SmrOptions::default()
    };
    let d = deploy_smr(&mut sim, &opts);
    sim.run_until(Time::from_secs(secs));
    let done: u64 = d.clients.iter().map(|&c| sim.metrics().counter(c, SMR_COMPLETED)).sum();
    let ordered = d.log.lock().unwrap().check_total_order().is_ok();
    (done as f64 / secs as f64 / 1e3, sim.metrics().latency(SMR_LATENCY).mean, ordered)
}

fn main() {
    let secs = 2;

    // Light load: the latency comparison (neither side saturated).
    let (_, cs_light) = run_cs(2, secs);
    let (_, smr_light, _) = run_smr(2, secs);
    println!("Replicated B+-tree, Queries workload ({secs}s each):");
    println!("  light load (2 clients) — the cost of ordering:");
    println!("    client-server latency : {cs_light}");
    println!("    SMR (2 repl.) latency : {smr_light}");

    // Heavy load: the throughput comparison (reads spread over replicas).
    let (cs_kcps, _) = run_cs(20, secs);
    let (smr_kcps, _, ordered) = run_smr(20, secs);
    println!("  heavy load (20 clients) — read-only throughput:");
    println!("    client-server : {cs_kcps:>5.1} Kcps (one server saturates)");
    println!("    SMR (2 repl.) : {smr_kcps:>5.1} Kcps (designated replicas split the reads)");
    println!();
    println!("Ordering costs latency (thesis Fig. 4.1 left); replication");
    println!("pays it back on read throughput (Fig. 4.1 right). See the");
    println!("speculative_latency example for narrowing the latency gap.");
    assert!(ordered, "replicas must agree on the order");
    println!("Replica order agreement: verified.");
}
