//! State partitioning (thesis §4.2.2, the DSN 2011 headline): the
//! B⁺-tree is split into partitions replicated independently, while one
//! Ring Paxos coordinator still totally orders everything — so
//! cross-partition range queries stay linearizable.
//!
//! ```text
//! cargo run --release --example partitioned_store
//! ```

use hpsmr_core::deploy::{deploy_smr, PartitionOptions, SmrOptions};
use hpsmr_core::SMR_COMPLETED;
use simnet::prelude::*;
use workload::WorkloadKind;

fn run(partitions: Option<PartitionOptions>, label: &str) -> f64 {
    let secs = 2;
    let mut sim = Sim::new(SimConfig::default());
    let opts = SmrOptions {
        n_replicas: 2,
        n_clients: 150,
        workload: WorkloadKind::Queries,
        partitions,
        ..SmrOptions::default()
    };
    let d = deploy_smr(&mut sim, &opts);
    sim.run_until(Time::from_secs(secs));
    let done: u64 = d.clients.iter().map(|&c| sim.metrics().counter(c, SMR_COMPLETED)).sum();
    let kcps = done as f64 / secs as f64 / 1e3;
    println!("  {label:<28}: {kcps:>6.1} Kcps");
    if partitions.is_some() {
        d.log.lock().unwrap().check_partial_order().expect("cross-partition order acyclic");
    }
    kcps
}

fn main() {
    println!("B+-tree, Queries workload, 150 closed-loop clients:");
    let base = run(None, "full replication (SMR)");
    let two = run(
        Some(PartitionOptions { n: 2, replicas_per: 2, cross_pct: 0 }),
        "2 partitions, 0% cross",
    );
    let four = run(
        Some(PartitionOptions { n: 4, replicas_per: 2, cross_pct: 0 }),
        "4 partitions, 0% cross",
    );
    let cross = run(
        Some(PartitionOptions { n: 2, replicas_per: 2, cross_pct: 50 }),
        "2 partitions, 50% cross",
    );
    println!();
    println!(
        "Speedups over SMR: 2P = {:.1}x, 4P = {:.1}x (paper: 2.1x / 3.9x).",
        two / base,
        four / base
    );
    println!("Cross-partition queries ({:.1} Kcps) split into sub-commands,", cross);
    println!("execute on each partition, and merge at the client — still");
    println!("totally ordered by the single coordinator, so linearizability");
    println!("holds (the acyclicity check above just verified it).");
}
