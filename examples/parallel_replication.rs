//! Parallel state-machine replication (thesis ch. 6): the same workload
//! on all four replica execution models, side by side.
//!
//! A service whose state is split into four conflict domains serves a
//! 95%-independent command mix. Sequential and pipelined replicas
//! execute one command at a time; SDPE dispatches through a scheduler
//! thread; P-SMR gives every domain its own Multi-Ring Paxos group and
//! worker thread — no scheduler, no rollback.
//!
//! ```text
//! cargo run --release --example parallel_replication
//! ```

use psmr::{deploy_parallel, ExecModel, ParallelOptions, PsmrWorkload, PSMR_COMPLETED};
use simnet::prelude::*;

fn main() {
    let workload = PsmrWorkload {
        n_groups: 4,
        dep_pct: 5, // 5% of commands touch every domain (synchronized)
        ..PsmrWorkload::default()
    };

    println!("parallel replication: 4 conflict domains, 5% dependent commands");
    println!("  {:<11} | {:>9} | {:>9} | {:>10}", "model", "Kcps", "latency", "dep execs");

    for model in [
        ExecModel::Sequential,
        ExecModel::Pipelined,
        ExecModel::Sdpe { workers: 4 },
        ExecModel::Psmr { workers: 4 },
    ] {
        let mut cfg = SimConfig::default();
        cfg.cores_per_node = model.cores_needed().max(4);
        let mut sim = Sim::new(cfg);
        let opts = ParallelOptions { model, n_clients: 80, workload, ..ParallelOptions::default() };
        let d = deploy_parallel(&mut sim, &opts);
        sim.run_until(Time::from_secs(1));

        let done: u64 = d.clients.iter().map(|&c| sim.metrics().counter(c, PSMR_COMPLETED)).sum();
        let lat = sim.metrics().latency(psmr::PSMR_LATENCY).mean;
        let deps: u64 = sim.metrics().counter(d.replicas[0], psmr::PSMR_DEP_EXECS);
        println!(
            "  {:<11} | {:9.1} | {:>9} | {:>10}",
            model.label(),
            done as f64 / 1e3,
            format!("{lat}"),
            deps
        );

        // Replicas must agree on what ran, in which per-domain order,
        // and on the resulting state — the ch. 6 safety argument.
        let a = d.stores[0].lock().unwrap();
        let b = d.stores[1].lock().unwrap();
        assert_eq!(a.digest(), b.digest(), "replica execution orders diverged");
        assert_eq!(a.snapshot(), b.snapshot(), "replica states diverged");
    }

    println!("\nP-SMR executes independent commands on all four workers concurrently;");
    println!("each dependent command barriers the workers (Fig. 6.2's synchronized mode).");
}
