//! Multi-Ring Paxos (thesis ch. 5): atomic multicast from an ensemble of
//! independent rings. Learners subscribe to any subset of groups and
//! merge the decision streams deterministically; under-loaded rings emit
//! skip instances so they never stall anyone's merge.
//!
//! ```text
//! cargo run --release --example multiring_groups
//! ```

use multiring::{deploy_multiring, MultiRingOptions, MRP_LATENCY};
use simnet::prelude::*;

fn main() {
    let mut sim = Sim::new(SimConfig::default());
    let opts = MultiRingOptions {
        n_rings: 3,
        // Deliberately imbalanced: ring 2 carries a trickle.
        rates_per_ring_bps: vec![200_000_000, 100_000_000, 1_000_000],
        lambda_per_sec: 9000,  // λ: expected max consensus rate
        delta: Dur::millis(1), // ∆: rate sampling interval
        m: 1,                  // M: instances merged per ring per turn
        // Learner 0 subscribes to groups {0}, learner 1 to {0,1},
        // learner 2 to all three.
        learners: vec![vec![0], vec![0, 1], vec![0, 1, 2]],
        ..MultiRingOptions::default()
    };
    let d = deploy_multiring(&mut sim, &opts);
    sim.run_until(Time::from_secs(2));

    println!("Multi-Ring Paxos: 3 rings at 200 / 100 / 1 Mbps, λ = 9000/s");
    for (i, &l) in d.learners.iter().enumerate() {
        let bytes = sim.metrics().counter(l, "abcast.delivered_bytes");
        let msgs = sim.metrics().counter(l, "abcast.delivered_msgs");
        println!(
            "  learner {i} (groups {:?}): {msgs:>6} msgs, {:>6.0} Mbps",
            opts.learners[i],
            mbps(bytes, Dur::secs(2))
        );
    }
    let skips = sim.metrics().counter(d.rings[2].coordinator(), "rp.skips");
    println!("  ring 2 skipped {skips} instances so its silence never blocked a merge");
    let lat = sim.metrics().latency(MRP_LATENCY);
    println!("  merged delivery latency: mean {}, p99 {}", lat.mean, lat.p99);

    // Learners sharing groups must order common messages identically
    // (uniform partial order, thesis §2.2.4).
    d.log.lock().unwrap().check_partial_order().expect("uniform partial order");
    println!("  uniform partial order: verified across subscription patterns");
}
