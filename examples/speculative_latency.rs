//! Speculative execution (thesis §4.2.1): replicas execute commands the
//! moment the payload arrives, overlapping execution with the ordering
//! protocol; the response waits for the order to be confirmed. The
//! saving is min(ordering time Δo, execution time Δe).
//!
//! ```text
//! cargo run --release --example speculative_latency
//! ```

use hpsmr_core::deploy::{deploy_smr, SmrOptions};
use hpsmr_core::{SMR_COMPLETED, SMR_LATENCY, SMR_ROLLBACKS, SMR_SPEC_EXEC};
use simnet::prelude::*;
use workload::WorkloadKind;

fn run(speculative: bool, n_clients: usize) -> (Dur, f64, u64, u64) {
    let secs = 2;
    let mut sim = Sim::new(SimConfig::default());
    let opts = SmrOptions {
        n_replicas: 2,
        n_clients,
        workload: WorkloadKind::InsDelBatch,
        speculative,
        ..SmrOptions::default()
    };
    let d = deploy_smr(&mut sim, &opts);
    sim.run_until(Time::from_secs(secs));
    let lat = sim.metrics().latency(SMR_LATENCY).mean;
    let done: u64 = d.clients.iter().map(|&c| sim.metrics().counter(c, SMR_COMPLETED)).sum();
    let spec: u64 = d.all_replicas().iter().map(|&r| sim.metrics().counter(r, SMR_SPEC_EXEC)).sum();
    let rb: u64 = d.all_replicas().iter().map(|&r| sim.metrics().counter(r, SMR_ROLLBACKS)).sum();
    (lat, done as f64 / secs as f64 / 1e3, spec, rb)
}

fn main() {
    println!("Batched updates (7 per command), 2 replicas:");
    println!(
        "{:>8} | {:>12} {:>12} | {:>12} {:>12}",
        "clients", "plain lat", "spec lat", "plain Kcps", "spec Kcps"
    );
    for &n in &[10usize, 40, 80] {
        let (plat, ptput, _, _) = run(false, n);
        let (slat, stput, spec, rb) = run(true, n);
        println!(
            "{n:>8} | {plat:>12} {slat:>12} | {ptput:>12.1} {stput:>12.1}   (speculated {spec}, rolled back {rb})"
        );
    }
    println!();
    println!("With a stable coordinator the arrival order always matches the");
    println!("decided order, so speculation never rolls back (§4.2.1) — the");
    println!("response is simply released earlier, and by Little's law the");
    println!("same client population completes more commands per second.");
}
