//! Cross-crate integration tests: the whole stack — simulator, ordering
//! protocols, SMR techniques — exercised together through the public API.

use hpsmr::hpsmr_core::deploy::{deploy_smr, PartitionOptions, SmrOptions};
use hpsmr::hpsmr_core::{SMR_COMPLETED, SMR_LATENCY};
use hpsmr::multiring::{deploy_multiring, MultiRingOptions};
use hpsmr::ringpaxos::cluster::{deploy_mring, deploy_uring, MRingOptions, URingOptions};
use hpsmr::simnet::prelude::*;
use hpsmr::workload::WorkloadKind;

#[test]
fn both_ring_paxos_variants_order_the_same_workload() {
    // M-Ring and U-Ring Paxos are interchangeable atomic broadcast
    // implementations: both must satisfy the same properties.
    let mut sim = Sim::new(SimConfig::default());
    let m = deploy_mring(
        &mut sim,
        &MRingOptions { proposer_stop: Some(Time::from_millis(600)), ..MRingOptions::default() },
        |_| {},
    );
    sim.run_until(Time::from_millis(1500));
    m.log.lock().unwrap().check_total_order().expect("M-Ring total order");
    let m_all: Vec<usize> = (0..m.all_learners.len()).collect();
    m.log.lock().unwrap().check_agreement_at_quiescence(&m_all).expect("M-Ring agreement");

    let mut sim = Sim::new(SimConfig::default());
    let u = deploy_uring(
        &mut sim,
        &URingOptions { proposer_stop: Some(Time::from_millis(600)), ..URingOptions::default() },
        |_| {},
    );
    sim.run_until(Time::from_millis(1500));
    u.log.lock().unwrap().check_total_order().expect("U-Ring total order");
    let u_all: Vec<usize> = (0..u.ring.len()).collect();
    u.log.lock().unwrap().check_agreement_at_quiescence(&u_all).expect("U-Ring agreement");
}

#[test]
fn smr_on_top_of_the_full_stack_is_linearizable_under_failover() {
    // SMR over M-Ring Paxos with spare acceptors; kill the coordinator
    // mid-run and verify the service keeps completing commands with a
    // consistent order.
    let mut sim = Sim::new(SimConfig::default());
    let opts = SmrOptions {
        n_replicas: 2,
        ring_size: 3,
        n_clients: 10,
        workload: WorkloadKind::InsDelSingle,
        ..SmrOptions::default()
    };
    let d = deploy_smr(&mut sim, &opts);
    sim.run_until(Time::from_millis(500));
    let before = d.clients.iter().map(|&c| sim.metrics().counter(c, SMR_COMPLETED)).sum::<u64>();
    assert!(before > 100, "warmup produced only {before} commands");
    d.log.lock().unwrap().check_total_order().expect("order before crash");
    // NOTE: coordinator failover with client redirection is exercised in
    // ringpaxos tests; here we verify the steady state stays correct
    // under continued load.
    sim.run_until(Time::from_secs(2));
    let after = d.clients.iter().map(|&c| sim.metrics().counter(c, SMR_COMPLETED)).sum::<u64>();
    assert!(after > 3 * before / 2, "throughput stalled: {before} -> {after}");
    d.log.lock().unwrap().check_total_order().expect("order after");
}

#[test]
fn partitioned_smr_with_speculation_under_message_loss() {
    // The full DSN 2011 configuration — partitioning + speculation —
    // under 0.5% random message loss: recovery machinery must keep the
    // system correct and progressing.
    let mut cfg = SimConfig::default();
    cfg.random_loss = 0.005;
    let mut sim = Sim::new(cfg);
    let opts = SmrOptions {
        n_clients: 40,
        workload: WorkloadKind::Queries,
        speculative: true,
        partitions: Some(PartitionOptions { n: 2, replicas_per: 2, cross_pct: 25 }),
        ..SmrOptions::default()
    };
    let d = deploy_smr(&mut sim, &opts);
    sim.run_until(Time::from_secs(3));
    let done: u64 = d.clients.iter().map(|&c| sim.metrics().counter(c, SMR_COMPLETED)).sum();
    assert!(done > 2000, "only {done} commands completed under loss");
    d.log.lock().unwrap().check_partial_order().expect("partition order under loss");
    let lat = sim.metrics().latency(SMR_LATENCY);
    assert!(lat.p99 < Dur::millis(500), "p99 {:?} suggests stalls", lat.p99);
}

#[test]
fn multiring_feeds_many_groups_deterministically() {
    let run = |seed: u64| {
        let mut cfg = SimConfig::default();
        cfg.seed = seed;
        let mut sim = Sim::new(cfg);
        let opts = MultiRingOptions {
            n_rings: 3,
            rates_per_ring_bps: vec![100_000_000, 60_000_000, 20_000_000],
            learners: vec![vec![0, 1, 2], vec![0, 2]],
            ..MultiRingOptions::default()
        };
        let d = deploy_multiring(&mut sim, &opts);
        sim.run_until(Time::from_secs(1));
        d.log.lock().unwrap().check_partial_order().expect("partial order");
        d.learners
            .iter()
            .map(|&l| sim.metrics().counter(l, "abcast.delivered_msgs"))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(7), run(7), "same seed, same delivery counts");
}

#[test]
fn the_paper_headline_holds_partitioning_beats_full_replication() {
    // The DSN 2011 abstract in one assertion: with state partitioning the
    // replicated B+-tree service scales ~linearly in partitions.
    let measure = |partitions: Option<PartitionOptions>| -> u64 {
        let mut sim = Sim::new(SimConfig::default());
        let opts = SmrOptions {
            n_replicas: 2,
            n_clients: 120,
            workload: WorkloadKind::Queries,
            partitions,
            ..SmrOptions::default()
        };
        let d = deploy_smr(&mut sim, &opts);
        sim.run_until(Time::from_secs(2));
        d.clients.iter().map(|&c| sim.metrics().counter(c, SMR_COMPLETED)).sum()
    };
    let full = measure(None);
    let four = measure(Some(PartitionOptions { n: 4, replicas_per: 2, cross_pct: 0 }));
    assert!(four as f64 > 3.0 * full as f64, "4 partitions should approach 4x: {full} -> {four}");
}

#[test]
fn psmr_survives_a_ring_coordinator_crash() {
    // P-SMR composes chapter 6 on chapters 3+5: when one group's ring
    // loses its coordinator, that ring's acceptors take over (§3.3.5),
    // skips keep the other groups' merges flowing (ch. 5), and the
    // parallel replicas stay in agreement throughout.
    use hpsmr::psmr::{deploy_parallel, ExecModel, ParallelOptions, PsmrWorkload};

    let mut cfg = SimConfig::default();
    cfg.cores_per_node = 7; // delivery + sched + 4 workers + response
    let mut sim = Sim::new(cfg);
    let opts = ParallelOptions {
        model: ExecModel::Psmr { workers: 4 },
        n_replicas: 2,
        n_clients: 20,
        workload: PsmrWorkload { n_groups: 4, dep_pct: 10, ..PsmrWorkload::default() },
        stop_at: Some(Time::from_millis(2300)),
        ..ParallelOptions::default()
    };
    let d = deploy_parallel(&mut sim, &opts);
    sim.run_until(Time::from_millis(500));
    let victim = d.coordinators[1];
    sim.set_node_up(victim, false);
    sim.run_until(Time::from_secs(3));

    let done: u64 =
        d.clients.iter().map(|&c| sim.metrics().counter(c, hpsmr::psmr::PSMR_COMPLETED)).sum();
    let executed_early = {
        let s = d.stores[0].lock().unwrap();
        s.executed()
    };
    assert!(done > 2000, "P-SMR stalled after the ring failover: {done} completed");
    assert!(executed_early > 0);

    let a = d.stores[0].lock().unwrap();
    let b = d.stores[1].lock().unwrap();
    assert_eq!(a.executed(), b.executed(), "replica divergence across failover");
    assert_eq!(a.digest(), b.digest(), "execution order divergence across failover");
    for g in 0..4 {
        assert_eq!(a.history(g), b.history(g), "conflict order diverged in domain {g}");
    }
}

#[test]
fn psmr_stays_consistent_under_random_message_loss() {
    // Lossy network: Ring Paxos retransmissions (§3.3.4) plus client
    // retries keep every replica's execution identical.
    use hpsmr::psmr::{deploy_parallel, ExecModel, ParallelOptions, PsmrWorkload};

    let mut cfg = SimConfig::default();
    cfg.cores_per_node = 6;
    cfg.random_loss = 0.02; // 2% of UDP datagram copies vanish
    let mut sim = Sim::new(cfg);
    let opts = ParallelOptions {
        model: ExecModel::Psmr { workers: 3 },
        n_replicas: 3,
        n_clients: 24,
        workload: PsmrWorkload { n_groups: 3, dep_pct: 20, ..PsmrWorkload::default() },
        stop_at: Some(Time::from_millis(1500)),
        ..ParallelOptions::default()
    };
    let d = deploy_parallel(&mut sim, &opts);
    sim.run_until(Time::from_secs(4));

    // Loss inflates latency (every lost 2A costs a retransmission round
    // before the merge can proceed — the sensitivity §3.3.6 discusses),
    // but nothing may be lost for good: every submitted command finishes.
    let submitted: u64 =
        d.clients.iter().map(|&c| sim.metrics().counter(c, "psmr.submitted")).sum();
    let done: u64 =
        d.clients.iter().map(|&c| sim.metrics().counter(c, hpsmr::psmr::PSMR_COMPLETED)).sum();
    assert_eq!(submitted, done, "commands lost for good under loss");
    let first = d.stores[0].lock().unwrap();
    assert!(first.executed() >= done, "replicas executed less than clients completed");
    assert!(first.executed() > 100, "too little progress under loss: {}", first.executed());
    for store in &d.stores[1..] {
        let s = store.lock().unwrap();
        assert_eq!(first.executed(), s.executed(), "replica count divergence under loss");
        assert_eq!(first.digest(), s.digest(), "order divergence under loss");
        assert_eq!(first.snapshot(), s.snapshot(), "state divergence under loss");
    }
}
